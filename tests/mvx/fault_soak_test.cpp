// Seeded fault soak: mixed eager/rendezvous/collective traffic while rails
// flap on a randomized (but fully seeded) schedule and a per-message error
// rate chews on WQEs.  Three properties are asserted per seed:
//   1. zero corruption — every pt2pt payload and collective result is
//      byte-exact despite retries, re-striping and duplicate suppression;
//   2. the failover ledger balances — every error CQE on the send side is
//      handled by exactly one eager replay or one rendezvous re-stripe;
//   3. the whole run is bit-reproducible — same seed, same end time, same
//      telemetry snapshot (virtual-time state only; sim.wall.* excluded).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"
#include "sim/rng.hpp"

namespace ib12x::mvx {
namespace {

using testutil::payload;

struct Plan {
  int src, dst, tag;
  std::size_t bytes;
  bool nonblocking;
};

/// Identical global pt2pt plan on every rank, derived from the seed.
std::vector<Plan> make_plan(std::uint64_t seed, int ranks, int messages) {
  sim::Rng rng(seed);
  std::vector<Plan> plan;
  for (int i = 0; i < messages; ++i) {
    Plan p;
    p.src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
    p.dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks - 1)));
    if (p.dst >= p.src) ++p.dst;
    p.tag = i;
    switch (rng.next_below(4)) {
      case 0: p.bytes = 1 + rng.next_below(512); break;                    // eager
      case 1: p.bytes = 4 * 1024 + rng.next_below(16 * 1024); break;       // straddle
      case 2: p.bytes = 32 * 1024 + rng.next_below(96 * 1024); break;      // rendezvous
      default: p.bytes = 256 * 1024 + rng.next_below(256 * 1024); break;   // striped rndv
    }
    p.nonblocking = rng.next_below(2) == 0;
    plan.push_back(p);
  }
  return plan;
}

/// Randomized rail-flap schedule: 2–4 link flaps spread over both nodes'
/// HCAs, landing while the traffic above is in flight.  Flapping one HCA's
/// port kills half the rails (hcas_per_node = 2); the other half survives.
Config make_faulty_config(std::uint64_t seed) {
  Config cfg = Config::enhanced(2, Policy::EPC);
  cfg.hcas_per_node = 2;  // 2 HCAs × 1 port × 2 QPs = 4 rails per peer
  cfg.fault.enabled = true;
  cfg.fault.seed = seed ^ 0xfa17;
  cfg.fault.msg_error_rate = 0.03;
  sim::Rng rng(seed * 2654435761u + 17);
  const int flaps = 2 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < flaps; ++i) {
    Config::FaultConfig::LinkFlap f;
    f.node = static_cast<int>(rng.next_below(2));
    f.hca = static_cast<int>(rng.next_below(2));
    f.port = 0;
    f.down_at = sim::microseconds(30.0 + static_cast<double>(rng.next_below(400)));
    f.up_at = f.down_at + sim::microseconds(20.0 + static_cast<double>(rng.next_below(120)));
    cfg.fault.link_flaps.push_back(f);
  }
  return cfg;
}

struct SoakResult {
  sim::Time end_time = 0;
  std::vector<std::pair<std::string, double>> snapshot;  ///< sim.wall.* excluded
  std::uint64_t send_errors = 0;
  std::uint64_t eager_retries = 0;
  std::uint64_t restriped = 0;
  std::uint64_t injected = 0;
};

SoakResult run_soak(std::uint64_t seed, int messages,
                    const std::function<void(Config&)>& tweak = {}) {
  Config cfg = make_faulty_config(seed);
  if (tweak) tweak(cfg);
  World w(ClusterSpec{2, 2}, cfg);
  w.run([&](Communicator& c) {
    const auto plan = make_plan(seed, c.size(), messages);
    std::vector<std::size_t> my_recvs, my_sends;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (plan[i].dst == c.rank()) my_recvs.push_back(i);
      if (plan[i].src == c.rank()) my_sends.push_back(i);
    }
    // Shuffled posting order exercises the unexpected queue under faults.
    sim::Rng shuffle(seed ^ (0x50a6u + static_cast<std::uint64_t>(c.rank())));
    for (std::size_t i = my_recvs.size(); i > 1; --i) {
      std::swap(my_recvs[i - 1], my_recvs[shuffle.next_below(i)]);
    }

    std::vector<std::vector<std::byte>> rbufs(my_recvs.size());
    std::vector<Request> rreqs;
    for (std::size_t k = 0; k < my_recvs.size(); ++k) {
      const Plan& p = plan[my_recvs[k]];
      rbufs[k].resize(p.bytes);
      rreqs.push_back(c.irecv(rbufs[k].data(), p.bytes, BYTE, p.src, p.tag));
    }
    std::vector<std::vector<std::byte>> sbufs;
    std::vector<Request> sreqs;
    for (std::size_t idx : my_sends) {
      const Plan& p = plan[idx];
      sbufs.push_back(payload(p.bytes, p.src, p.tag));
      if (p.nonblocking) {
        sreqs.push_back(c.isend(sbufs.back().data(), p.bytes, BYTE, p.dst, p.tag));
      } else {
        c.send(sbufs.back().data(), p.bytes, BYTE, p.dst, p.tag);
      }
    }
    c.waitall(sreqs);
    c.waitall(rreqs);
    for (std::size_t k = 0; k < my_recvs.size(); ++k) {
      const Plan& p = plan[my_recvs[k]];
      ASSERT_EQ(rbufs[k], payload(p.bytes, p.src, p.tag))
          << "seed " << seed << " msg " << my_recvs[k] << " (" << p.src << "->" << p.dst
          << ", " << p.bytes << " B)";
    }

    // Collectives ride the same faulted rails: a striped-size allreduce and
    // a large bcast, both with checkable results.
    const std::size_t n = 16 * 1024;
    std::vector<double> in(n, 1.0 + c.rank()), out(n, 0.0);
    c.allreduce(in.data(), out.data(), n, DOUBLE, Op::Sum);
    const double want = static_cast<double>(c.size() * (c.size() + 1)) / 2.0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], want) << "seed " << seed << " allreduce[" << i << "]";
    }
    std::vector<std::byte> big =
        c.rank() == 0 ? payload(512 * 1024, 0, 777) : std::vector<std::byte>(512 * 1024);
    c.bcast(big.data(), big.size(), BYTE, 0);
    ASSERT_EQ(big, payload(512 * 1024, 0, 777)) << "seed " << seed << " bcast";
    c.barrier();
  });

  SoakResult res;
  res.end_time = w.end_time();
  for (const auto& s : w.telemetry().snapshot()) {
    if (s.name.rfind("sim.wall.", 0) == 0) continue;
    res.snapshot.emplace_back(s.name, s.value);
  }
  res.send_errors = w.telemetry().counter_value("fault.send_errors");
  res.eager_retries = w.telemetry().counter_value("fault.eager_retries");
  res.restriped = w.telemetry().counter_value("fault.rndv_restriped");
  res.injected = static_cast<std::uint64_t>(
      w.telemetry().counter_value("rail.down"));  // link flaps actually bit
  return res;
}

class FaultSoak : public ::testing::TestWithParam<int> {};

TEST_P(FaultSoak, PayloadsIntactAndLedgerBalances) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ull + 11;
  const SoakResult r = run_soak(seed, /*messages=*/48);
  // The schedule is tuned so every seed actually exercises the machinery.
  EXPECT_GT(r.send_errors, 0u) << "seed " << seed << " injected no send-side faults";
  // Every error CQE was handled by exactly one replay mechanism.
  EXPECT_EQ(r.send_errors, r.eager_retries + r.restriped) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSoak, ::testing::Range(0, 6));

TEST(FaultSoak, BitReproduciblePerSeed) {
  const SoakResult a = run_soak(0x5eed0001, 40);
  const SoakResult b = run_soak(0x5eed0001, 40);
  EXPECT_EQ(a.end_time, b.end_time);
  ASSERT_EQ(a.snapshot.size(), b.snapshot.size());
  for (std::size_t i = 0; i < a.snapshot.size(); ++i) {
    EXPECT_EQ(a.snapshot[i].first, b.snapshot[i].first);
    EXPECT_EQ(a.snapshot[i].second, b.snapshot[i].second)
        << "counter " << a.snapshot[i].first << " diverged between identical runs";
  }
}

TEST(FaultSoak, SrqPooledEagerSurvivesFaults) {
  // The connection-scaling refactor removed the SRQ+fault guard; this pins
  // use_srq=true explicitly (independent of the session defaults) with a
  // deliberately small pool so flushed SRQ slots and low-watermark
  // replenishes both happen while rails flap.  Flushed slots must route
  // through the same recovery ledger as dedicated-RQ flushes.
  const SoakResult r = run_soak(0x51aafa17, /*messages=*/48, [](Config& cfg) {
    cfg.use_srq = true;
    cfg.lazy_connect = true;
    cfg.srq_pool_slots = 64;
    cfg.srq_limit = 8;
  });
  EXPECT_GT(r.send_errors, 0u) << "SRQ soak injected no send-side faults";
  EXPECT_EQ(r.send_errors, r.eager_retries + r.restriped);
}

TEST(FaultSoak, LegacyWiringLedgerStillBalances) {
  // The pre-refactor transport (eager all-pairs wiring, per-QP receive
  // queues) stays a supported fault-recovery path; keep it under soak so the
  // parked-slot machinery does not rot now that the defaults moved on.
  const SoakResult r = run_soak(0x1e6ac0de, /*messages=*/48, [](Config& cfg) {
    cfg.use_srq = false;
    cfg.lazy_connect = false;
  });
  EXPECT_GT(r.send_errors, 0u) << "legacy soak injected no send-side faults";
  EXPECT_EQ(r.send_errors, r.eager_retries + r.restriped);
}

class FaultSoakReadRts : public ::testing::TestWithParam<int> {};

TEST_P(FaultSoakReadRts, LedgerBalancesUnderReadRendezvous) {
  // The receiver-driven protocol under the same soak: every failed RDMA-read
  // CQE must be re-planned over the live rails (fault.rndv_restriped), every
  // replayed Done suppressed, and payloads stay byte-exact (asserted inside
  // run_soak).
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 2862933555777941757ull + 3;
  const SoakResult r = run_soak(seed, /*messages=*/48, [](Config& cfg) {
    cfg.rndv.protocol = Config::RndvConfig::Protocol::ReadRts;
  });
  EXPECT_GT(r.send_errors, 0u) << "seed " << seed << " injected no faults";
  EXPECT_EQ(r.send_errors, r.eager_retries + r.restriped) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSoakReadRts, ::testing::Range(0, 3));

class FaultSoakWriteImm : public ::testing::TestWithParam<int> {};

TEST_P(FaultSoakWriteImm, LedgerBalancesWithElidedFin) {
  // With the FIN elided, a faulted immediate (folded or trailing) must be
  // replayed as an immediate — the receiver cannot complete off a FIN that
  // never existed — and a duplicated immediate after an ACK drop must be
  // suppressed, not double-complete the receive.
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 3935559000370003845ull + 7;
  const SoakResult r = run_soak(seed, /*messages=*/48, [](Config& cfg) {
    cfg.rndv.protocol = Config::RndvConfig::Protocol::WriteImm;
  });
  EXPECT_GT(r.send_errors, 0u) << "seed " << seed << " injected no faults";
  EXPECT_EQ(r.send_errors, r.eager_retries + r.restriped) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSoakWriteImm, ::testing::Range(0, 3));

TEST(FaultSoak, NewProtocolsBitReproduciblePerSeed) {
  for (auto proto : {Config::RndvConfig::Protocol::ReadRts, Config::RndvConfig::Protocol::WriteImm}) {
    auto tweak = [proto](Config& cfg) { cfg.rndv.protocol = proto; };
    const SoakResult a = run_soak(0x5eed0002, 40, tweak);
    const SoakResult b = run_soak(0x5eed0002, 40, tweak);
    EXPECT_EQ(a.end_time, b.end_time) << "protocol " << static_cast<int>(proto);
    ASSERT_EQ(a.snapshot.size(), b.snapshot.size());
    for (std::size_t i = 0; i < a.snapshot.size(); ++i) {
      EXPECT_EQ(a.snapshot[i].second, b.snapshot[i].second)
          << "counter " << a.snapshot[i].first << " diverged under protocol "
          << static_cast<int>(proto);
    }
  }
}

TEST(FaultSoak, DistinctSeedsTakeDistinctFaultPaths) {
  // Not a correctness property per se, but a canary: if two different seeds
  // produce identical fault telemetry, the plan generator is likely ignoring
  // its seed.
  const SoakResult a = run_soak(0xaaaa, 32);
  const SoakResult b = run_soak(0xbbbb, 32);
  EXPECT_NE(std::tie(a.end_time, a.send_errors), std::tie(b.end_time, b.send_errors));
}

}  // namespace
}  // namespace ib12x::mvx
