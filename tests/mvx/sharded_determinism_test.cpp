// The parallel engine's oracle contract: `sim_shards = N` must produce
// bit-identical simulated-time results to the single-threaded run.  Three
// layers of evidence per workload:
//   1. every payload delivered under sharding is byte-exact (asserted inside
//      the rank bodies);
//   2. the full virtual-time digest — end time, global event count, every
//      telemetry metric — matches the sim_shards = 1 oracle exactly.  Only
//      host-speed gauges (any ".wall." metric), the sim.shard.* group and the
//      two allocator-shape gauges (per-shard slab growth differs, event
//      counts do not) are excluded;
//   3. faulty runs (link flaps + message errors) under sim_shards = 2 stay
//      bit-reproducible run to run per seed — the PR-5 soak property carried
//      into sharded mode.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

using testutil::payload;

bool is_wall_gauge(const std::string& name) {
  return name.find(".wall.") != std::string::npos;
}

/// True for metrics legitimately different between shard counts: host-speed
/// gauges, the shard group itself, and allocator-shape gauges (each shard
/// grows its own event slab, so *allocations* differ while event counts are
/// required to match).
bool excluded_from_oracle(const std::string& name) {
  return is_wall_gauge(name) || name.rfind("sim.shard.", 0) == 0 ||
         name == "sim.kernel_allocs" || name == "sim.allocs_per_event";
}

struct Digest {
  std::uint64_t events = 0;
  sim::Time end_time = 0;
  std::map<std::string, double> telemetry;  ///< oracle-comparable metrics only
  std::map<std::string, double> shard;      ///< the sim.shard.* group
};

/// A fig06-sized workload on a 4-node cluster: windowed large-message
/// (rendezvous) bandwidth across nodes, small-message acks, intra-node shm
/// token passing, and a closing barrier — with byte-exact payload checks.
Digest run_fig06_sized(int shards) {
  Config cfg = Config::enhanced(4, Policy::EPC);
  cfg.lazy_connect = false;  // required by sim_shards > 1; pinned for all runs
  cfg.sim_shards = shards;
  World w(ClusterSpec{/*nodes=*/4, /*procs_per_node=*/2}, cfg);
  constexpr std::size_t kBytes = 1 << 20;
  constexpr int kWindow = 4;
  constexpr int kIters = 3;
  w.run([](Communicator& c) {
    const int peer = c.rank() ^ 2;      // cross-node pairs (node = rank / 2)
    const int neighbor = c.rank() ^ 1;  // same-node pairs (shm channel)
    // One buffer per window slot, allocated once and reused every iteration:
    // the registration cache is keyed by exact pointer, so per-iteration
    // allocations would make hit rates (and thus virtual timing) depend on
    // heap-address reuse instead of on the engine under test.
    std::vector<std::vector<std::byte>> bufs(kWindow);
    for (int i = 0; i < kWindow; ++i) {
      bufs[static_cast<std::size_t>(i)] = payload(kBytes, c.rank(), i);
    }
    for (int it = 0; it < kIters; ++it) {
      if ((c.rank() & 2) == 0) {
        std::vector<Request> reqs;
        for (int i = 0; i < kWindow; ++i) {
          reqs.push_back(c.isend(bufs[static_cast<std::size_t>(i)].data(), kBytes, BYTE, peer,
                                 it * kWindow + i));
        }
        c.waitall(reqs);
        std::byte ack{};
        c.recv(&ack, 1, BYTE, peer, 100 + it);
      } else {
        std::vector<Request> reqs;
        for (int i = 0; i < kWindow; ++i) {
          reqs.push_back(c.irecv(bufs[static_cast<std::size_t>(i)].data(), kBytes, BYTE,
                                 peer, it * kWindow + i));
        }
        c.waitall(reqs);
        for (int i = 0; i < kWindow; ++i) {
          ASSERT_EQ(bufs[static_cast<std::size_t>(i)], payload(kBytes, peer, i))
              << "rank " << c.rank() << " iter " << it << " window " << i;
          // Re-fill so a stale buffer can't satisfy the next iteration's check.
          bufs[static_cast<std::size_t>(i)].assign(kBytes, std::byte{0});
        }
        std::byte ack{};
        c.send(&ack, 1, BYTE, peer, 100 + it);
      }
      // Intra-node shm traffic in the same virtual timeframe (never crosses
      // a shard: both ranks of a node land on the node's shard).
      std::byte tok{};
      if (c.rank() % 2 == 0) {
        c.send(&tok, 1, BYTE, neighbor, 200 + it);
        c.recv(&tok, 1, BYTE, neighbor, 200 + it);
      } else {
        c.recv(&tok, 1, BYTE, neighbor, 200 + it);
        c.send(&tok, 1, BYTE, neighbor, 200 + it);
      }
    }
    c.barrier();
  });

  Digest d;
  d.events = w.events_processed();
  d.end_time = w.end_time();
  for (const auto& s : w.telemetry().snapshot()) {
    if (s.name.rfind("sim.shard.", 0) == 0 && !is_wall_gauge(s.name)) {
      d.shard[s.name] = s.value;
    }
    if (excluded_from_oracle(s.name)) continue;
    d.telemetry[s.name] = s.value;
  }
  return d;
}

void expect_same_digest(const Digest& oracle, const Digest& sharded, int shards) {
  EXPECT_EQ(sharded.events, oracle.events) << shards << " shards";
  EXPECT_EQ(sharded.end_time, oracle.end_time) << shards << " shards";
  ASSERT_EQ(sharded.telemetry.size(), oracle.telemetry.size()) << shards << " shards";
  for (const auto& [name, value] : oracle.telemetry) {
    auto it = sharded.telemetry.find(name);
    ASSERT_NE(it, sharded.telemetry.end())
        << "metric missing under " << shards << " shards: " << name;
    EXPECT_EQ(it->second, value) << "metric diverged under " << shards << " shards: " << name;
  }
}

TEST(ShardedDeterminism, TwoAndFourShardsMatchSingleThreadOracle) {
  const Digest oracle = run_fig06_sized(1);
  const Digest two = run_fig06_sized(2);
  const Digest four = run_fig06_sized(4);

  // The oracle run must not have a parallel engine at all.
  EXPECT_TRUE(oracle.shard.empty());
  expect_same_digest(oracle, two, 2);
  expect_same_digest(oracle, four, 4);

  // Sanity: the workload crossed shards and the engine really ran epochs.
  EXPECT_EQ(two.shard.at("sim.shard.count"), 2.0);
  EXPECT_EQ(four.shard.at("sim.shard.count"), 4.0);
  EXPECT_GT(four.shard.at("sim.shard.epochs"), 0.0);
  EXPECT_GT(four.shard.at("sim.shard.cross_events"), 0.0);
  EXPECT_GE(four.shard.at("sim.shard.mailbox_hwm"), 1.0);
}

TEST(ShardedDeterminism, ShardCountClampsToNodes) {
  // 8 requested shards on 4 nodes → 4 shards, still oracle-identical.
  const Digest oracle = run_fig06_sized(1);
  const Digest eight = run_fig06_sized(8);
  expect_same_digest(oracle, eight, 8);
  EXPECT_EQ(eight.shard.at("sim.shard.count"), 4.0);
}

TEST(ShardedDeterminism, LazyConnectIsRejected) {
  Config cfg = Config::enhanced(2, Policy::EPC);
  cfg.lazy_connect = true;
  cfg.sim_shards = 2;
  EXPECT_THROW(World(ClusterSpec{2, 1}, cfg), std::invalid_argument);
}

// ---- sharded fault soak: the PR-5 reproducibility property under shards ----

struct SoakDigest {
  sim::Time end_time = 0;
  std::vector<std::pair<std::string, double>> snapshot;  ///< wall gauges excluded
  std::uint64_t send_errors = 0;
  std::uint64_t handled = 0;
};

/// Mixed eager/rendezvous traffic with link flaps and a per-WQE error rate
/// under sim_shards = 2.  Sharded faulty runs draw per-HCA fault streams, so
/// they are not oracle-comparable — the property is bit-reproducibility per
/// seed plus payload integrity and a balanced recovery ledger.
SoakDigest run_sharded_soak(std::uint64_t seed) {
  Config cfg = Config::enhanced(2, Policy::EPC);
  cfg.hcas_per_node = 2;  // flapping one HCA's port leaves half the rails up
  cfg.lazy_connect = false;
  cfg.sim_shards = 2;
  cfg.fault.enabled = true;
  cfg.fault.seed = seed ^ 0xfa17;
  cfg.fault.msg_error_rate = 0.03;
  for (int i = 0; i < 3; ++i) {
    Config::FaultConfig::LinkFlap f;
    f.node = i % 2;
    f.hca = (i / 2) % 2;
    f.port = 0;
    f.down_at = sim::microseconds(30.0 + 90.0 * i + static_cast<double>(seed % 40));
    f.up_at = f.down_at + sim::microseconds(60.0);
    cfg.fault.link_flaps.push_back(f);
  }

  World w(ClusterSpec{2, 2}, cfg);
  w.run([&](Communicator& c) {
    const int peer = c.rank() ^ 2;  // cross-node (and cross-shard) pairs
    constexpr int kMsgs = 10;
    auto msg_bytes = [](int it) -> std::size_t {
      return (it % 2 == 0) ? 256 : (96 * 1024);  // eager + striped rendezvous
    };
    // All buffers up front: the registration cache keys on exact pointers,
    // so mid-run allocation churn would couple virtual timing to host heap
    // layout (see run_fig06_sized).
    std::vector<std::vector<std::byte>> bufs(kMsgs);
    for (int it = 0; it < kMsgs; ++it) {
      bufs[static_cast<std::size_t>(it)] = c.rank() < 2
                                               ? payload(msg_bytes(it), c.rank(), it)
                                               : std::vector<std::byte>(msg_bytes(it));
    }
    for (int it = 0; it < kMsgs; ++it) {
      std::vector<std::byte>& buf = bufs[static_cast<std::size_t>(it)];
      if (c.rank() < 2) {
        c.send(buf.data(), buf.size(), BYTE, peer, it);
      } else {
        c.recv(buf.data(), buf.size(), BYTE, peer, it);
        ASSERT_EQ(buf, payload(msg_bytes(it), peer, it)) << "seed " << seed << " msg " << it;
      }
    }
    const std::size_t n = 16 * 1024;
    std::vector<double> in(n, 1.0 + c.rank()), out(n, 0.0);
    c.allreduce(in.data(), out.data(), n, DOUBLE, Op::Sum);
    const double want = static_cast<double>(c.size() * (c.size() + 1)) / 2.0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], want) << "seed " << seed << " allreduce[" << i << "]";
    }
    c.barrier();
  });

  SoakDigest d;
  d.end_time = w.end_time();
  for (const auto& s : w.telemetry().snapshot()) {
    if (is_wall_gauge(s.name)) continue;
    d.snapshot.emplace_back(s.name, s.value);
  }
  d.send_errors = w.telemetry().counter_value("fault.send_errors");
  d.handled = w.telemetry().counter_value("fault.eager_retries") +
              w.telemetry().counter_value("fault.rndv_restriped");
  return d;
}

class ShardedFaultSoak : public ::testing::TestWithParam<int> {};

TEST_P(ShardedFaultSoak, BitReproduciblePerSeed) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ull + 11;
  const SoakDigest a = run_sharded_soak(seed);
  const SoakDigest b = run_sharded_soak(seed);
  EXPECT_EQ(a.end_time, b.end_time) << "seed " << seed;
  ASSERT_EQ(a.snapshot.size(), b.snapshot.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.snapshot.size(); ++i) {
    EXPECT_EQ(a.snapshot[i].first, b.snapshot[i].first);
    EXPECT_EQ(a.snapshot[i].second, b.snapshot[i].second)
        << "seed " << seed << ": " << a.snapshot[i].first
        << " diverged between identical sharded runs";
  }
  // The recovery ledger still balances under sharding.
  EXPECT_EQ(a.send_errors, a.handled) << "seed " << seed;
  EXPECT_GT(a.send_errors, 0u) << "seed " << seed << " injected no faults";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedFaultSoak, ::testing::Range(0, 4));

}  // namespace
}  // namespace ib12x::mvx
