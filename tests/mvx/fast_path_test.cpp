// The adaptive RDMA fast path: correctness under ordering/overflow, latency
// benefit, and fallback behaviour when ring credits run out.
#include <gtest/gtest.h>

#include <vector>

#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

using testutil::payload;

Config fp_config(int slots = 32) {
  Config cfg = Config::enhanced(4, Policy::EPC);
  cfg.use_rdma_fast_path = true;
  cfg.fast_path_slots = slots;
  return cfg;
}

TEST(FastPath, SmallMessagesIntact) {
  World w(ClusterSpec{2, 1}, fp_config());
  w.run([](Communicator& c) {
    for (std::size_t n : {0ul, 1ul, 64ul, 1024ul}) {
      if (c.rank() == 0) {
        auto data = payload(std::max<std::size_t>(n, 1), 0, static_cast<int>(n));
        c.send(data.data(), n, BYTE, 1, static_cast<int>(n));
      } else {
        std::vector<std::byte> got(std::max<std::size_t>(n, 1));
        Status st;
        c.recv(got.data(), n, BYTE, 0, static_cast<int>(n), &st);
        EXPECT_EQ(st.bytes, static_cast<std::int64_t>(n));
        if (n > 0) {
          got.resize(n);
          auto want = payload(std::max<std::size_t>(n, 1), 0, static_cast<int>(n));
          want.resize(n);
          EXPECT_EQ(got, want);
        }
      }
    }
  });
  EXPECT_GT(w.telemetry().counter_value("fastpath.sent"), 0u);
}

TEST(FastPath, OrderingAcrossChannels) {
  // Alternating small (fast path) and large (rendezvous) messages must still
  // arrive in MPI order.
  World w(ClusterSpec{2, 1}, fp_config());
  w.run([](Communicator& c) {
    const std::vector<std::size_t> sizes{64, 128 * 1024, 256, 64 * 1024, 32, 2048, 1 << 20, 8};
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        auto data = payload(sizes[i], 0, static_cast<int>(i));
        c.send(data.data(), sizes[i], BYTE, 1, 7);
      }
    } else {
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::vector<std::byte> got(sizes[i]);
        Status st;
        c.recv(got.data(), sizes[i], BYTE, 0, 7, &st);
        EXPECT_EQ(st.bytes, static_cast<std::int64_t>(sizes[i])) << "message " << i;
        EXPECT_EQ(got, payload(sizes[i], 0, static_cast<int>(i))) << "message " << i;
      }
    }
  });
}

TEST(FastPath, RingExhaustionFallsBackToEager) {
  Config cfg = fp_config(/*slots=*/4);
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    const int n = 100;
    if (c.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs;
      std::vector<Request> reqs;
      for (int i = 0; i < n; ++i) {
        bufs.push_back(payload(512, 0, i));
        reqs.push_back(c.isend(bufs.back().data(), 512, BYTE, 1, i));
      }
      c.waitall(reqs);
    } else {
      for (int i = 0; i < n; ++i) {
        std::vector<std::byte> got(512);
        c.recv(got.data(), 512, BYTE, 0, i);
        EXPECT_EQ(got, payload(512, 0, i)) << i;
      }
    }
  });
  EXPECT_GT(w.telemetry().counter_value("fastpath.sent"), 0u);
  // Overflow went through the net channel's eager path.
  EXPECT_GT(w.telemetry().counter_value("net.eager_sent"), 0u);
}

TEST(FastPath, LowersSmallMessageLatency) {
  auto latency = [](Config cfg) {
    World w(ClusterSpec{2, 1}, cfg);
    sim::Time end = 0;
    w.run([&](Communicator& c) {
      std::byte b{};
      for (int i = 0; i < 40; ++i) {
        if (c.rank() == 0) {
          c.send(&b, 1, BYTE, 1, 0);
          c.recv(&b, 1, BYTE, 1, 0);
        } else {
          c.recv(&b, 1, BYTE, 0, 0);
          c.send(&b, 1, BYTE, 0, 0);
        }
      }
      end = c.now();
    });
    return static_cast<double>(end);
  };
  EXPECT_LT(latency(fp_config()), latency(Config::enhanced(4, Policy::EPC)));
}

TEST(FastPath, RandomTrafficWithTinyRing) {
  Config cfg = fp_config(/*slots=*/2);
  cfg.fast_path_max = 4096;
  World w(ClusterSpec{2, 2}, cfg);
  w.run([](Communicator& c) {
    // all-pairs repeated exchange straddling the fast-path cutoff
    for (int round = 0; round < 10; ++round) {
      for (int off = 1; off < c.size(); ++off) {
        const int to = (c.rank() + off) % c.size();
        const int from = (c.rank() - off + c.size()) % c.size();
        const std::size_t n = static_cast<std::size_t>(64 << (round % 8));
        auto mine = payload(n, c.rank(), round);
        std::vector<std::byte> got(n);
        c.sendrecv(mine.data(), n, BYTE, to, round, got.data(), n, BYTE, from, round);
        EXPECT_EQ(got, payload(n, from, round));
      }
    }
  });
}

}  // namespace
}  // namespace ib12x::mvx
