// CG kernel: SPD convergence, determinism across configurations, and the
// paper's "no degradation" property.
#include <gtest/gtest.h>

#include "mvx/mpi.hpp"
#include "nas/cg.hpp"

namespace ib12x::nas {
namespace {

using mvx::ClusterSpec;
using mvx::Config;
using mvx::Policy;
using mvx::World;

CgResult run_once(ClusterSpec spec, Config cfg, NasClass cls) {
  World w(spec, cfg);
  CgResult res;
  w.run([&](mvx::Communicator& c) {
    CgResult r = run_cg(c, cls);
    if (c.rank() == 0) res = r;
  });
  return res;
}

TEST(NasCg, ConvergesOnLayouts) {
  for (ClusterSpec spec : {ClusterSpec{2, 1}, ClusterSpec{2, 2}, ClusterSpec{2, 3}, ClusterSpec{2, 4}}) {
    CgResult r = run_once(spec, Config::enhanced(4, Policy::EPC), NasClass::S);
    EXPECT_TRUE(r.verified) << spec.nodes << "x" << spec.procs_per_node;
    EXPECT_LT(r.final_residual, 1e-8);
    // The exact solution is the ones vector, so the checksum is n.
    EXPECT_NEAR(r.checksum, 1400.0, 1e-6);
  }
}

TEST(NasCg, ChecksumInvariantAcrossConfigs) {
  const double a = run_once({2, 2}, Config::original(), NasClass::S).checksum;
  const double b = run_once({2, 2}, Config::enhanced(4, Policy::EvenStriping), NasClass::S).checksum;
  const double c = run_once({2, 1}, Config::enhanced(2, Policy::RoundRobin), NasClass::S).checksum;
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(a, c);
}

TEST(NasCg, NoDegradationUnderEpc) {
  // The paper: "we have not seen performance degradation using other NAS
  // Parallel Benchmarks."  CG's traffic (8-byte allreduces + ~100 KB
  // allgathers) gains little from multi-rail, but must never lose.
  const double orig = run_once({2, 2}, Config::original(), NasClass::A).seconds;
  const double epc = run_once({2, 2}, Config::enhanced(4, Policy::EPC), NasClass::A).seconds;
  EXPECT_LE(epc, orig * 1.02);
}

TEST(NasCg, ResidualShrinksWithMoreIterations) {
  CgParams p = cg_params(NasClass::S);
  p.iterations = 5;
  World w1(ClusterSpec{2, 1}, Config{});
  CgResult five;
  w1.run([&](mvx::Communicator& c) {
    CgResult r = run_cg(c, p);
    if (c.rank() == 0) five = r;
  });
  p.iterations = 15;
  World w2(ClusterSpec{2, 1}, Config{});
  CgResult fifteen;
  w2.run([&](mvx::Communicator& c) {
    CgResult r = run_cg(c, p);
    if (c.rank() == 0) fifteen = r;
  });
  EXPECT_LT(fifteen.final_residual, five.final_residual);
}

}  // namespace
}  // namespace ib12x::nas
