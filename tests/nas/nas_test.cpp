// NAS kernel correctness: IS verification/determinism across configurations,
// FT self-consistency (inverse-of-forward) and checksum invariance.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "mvx/mpi.hpp"
#include "nas/fft.hpp"
#include "nas/ft.hpp"
#include "nas/is.hpp"

namespace ib12x::nas {
namespace {

using mvx::ClusterSpec;
using mvx::Config;
using mvx::Policy;
using mvx::World;

TEST(Fft, MatchesNaiveDft) {
  const std::size_t n = 16;
  Fft fft(n);
  std::vector<Complex> a(n), naive(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = Complex(std::sin(0.3 * static_cast<double>(i)), 0.1 * static_cast<double>(i));
  for (std::size_t k = 0; k < n; ++k) {
    Complex s(0, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * 3.14159265358979323846 * static_cast<double>(k * j) / static_cast<double>(n);
      s += a[j] * Complex(std::cos(ang), std::sin(ang));
    }
    naive[k] = s;
  }
  std::vector<Complex> b = a;
  fft.transform(b.data(), -1);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(b[k].real(), naive[k].real(), 1e-9);
    EXPECT_NEAR(b[k].imag(), naive[k].imag(), 1e-9);
  }
}

TEST(Fft, InverseRecoversInput) {
  const std::size_t n = 256;
  Fft fft(n);
  std::vector<Complex> a(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = Complex(static_cast<double>(i % 17), -static_cast<double>(i % 5));
  std::vector<Complex> b = a;
  fft.transform(b.data(), -1);
  fft.transform(b.data(), +1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(b[i].real(), a[i].real(), 1e-9);
    EXPECT_NEAR(b[i].imag(), a[i].imag(), 1e-9);
  }
}

TEST(Fft, StridedEqualsContiguous) {
  const std::size_t n = 64, stride = 7;
  Fft fft(n);
  std::vector<Complex> packed(n), strided(n * stride);
  for (std::size_t i = 0; i < n; ++i) {
    packed[i] = Complex(std::cos(0.1 * static_cast<double>(i)), 0.2);
    strided[i * stride] = packed[i];
  }
  fft.transform(packed.data(), -1);
  fft.transform_strided(strided.data(), stride, -1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(strided[i * stride].real(), packed[i].real(), 1e-9);
    EXPECT_NEAR(strided[i * stride].imag(), packed[i].imag(), 1e-9);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW(Fft(12), std::invalid_argument);
  EXPECT_THROW(Fft(0), std::invalid_argument);
}

TEST(NasIs, ClassSVerifiesOnLayouts) {
  for (ClusterSpec spec : {ClusterSpec{2, 1}, ClusterSpec{2, 2}, ClusterSpec{2, 4}}) {
    World w(spec, Config::enhanced(4, Policy::EPC));
    IsResult r0;
    w.run([&](mvx::Communicator& c) {
      IsResult r = run_is(c, NasClass::S);
      if (c.rank() == 0) r0 = r;
    });
    EXPECT_TRUE(r0.verified) << spec.nodes << "x" << spec.procs_per_node;
    EXPECT_GT(r0.seconds, 0.0);
  }
}

TEST(NasIs, ChecksumInvariantAcrossPoliciesAndQps) {
  // The sort result must not depend on how bytes travel.
  std::uint64_t reference = 0;
  bool have_ref = false;
  for (Config cfg : {Config::original(), Config::enhanced(4, Policy::EPC),
                     Config::enhanced(4, Policy::EvenStriping),
                     Config::enhanced(2, Policy::RoundRobin)}) {
    World w(ClusterSpec{2, 2}, cfg);
    std::uint64_t checksum = 0;
    w.run([&](mvx::Communicator& c) {
      IsResult r = run_is(c, NasClass::S);
      if (c.rank() == 0) checksum = r.checksum;
    });
    if (!have_ref) {
      reference = checksum;
      have_ref = true;
    } else {
      EXPECT_EQ(checksum, reference);
    }
  }
}

TEST(NasIs, EpcFasterThanOriginalClassS) {
  double t_orig = 0, t_epc = 0;
  {
    World w(ClusterSpec{2, 1}, Config::original());
    w.run([&](mvx::Communicator& c) {
      IsResult r = run_is(c, NasClass::S);
      if (c.rank() == 0) t_orig = r.seconds;
    });
  }
  {
    World w(ClusterSpec{2, 1}, Config::enhanced(4, Policy::EPC));
    w.run([&](mvx::Communicator& c) {
      IsResult r = run_is(c, NasClass::S);
      if (c.rank() == 0) t_epc = r.seconds;
    });
  }
  EXPECT_LT(t_epc, t_orig);
}

TEST(NasFt, ClassSVerifiesOnLayouts) {
  for (ClusterSpec spec : {ClusterSpec{2, 1}, ClusterSpec{2, 2}, ClusterSpec{2, 4}}) {
    World w(spec, Config::enhanced(4, Policy::EPC));
    FtResult r0;
    w.run([&](mvx::Communicator& c) {
      FtResult r = run_ft(c, NasClass::S);
      if (c.rank() == 0) r0 = r;
    });
    EXPECT_TRUE(r0.verified);
    EXPECT_EQ(r0.checksums.size(), 4u);
    EXPECT_GT(r0.seconds, 0.0);
  }
}

TEST(NasFt, ChecksumsInvariantAcrossConfigs) {
  std::vector<std::complex<double>> reference;
  for (Config cfg : {Config::original(), Config::enhanced(4, Policy::EPC)}) {
    for (ClusterSpec spec : {ClusterSpec{2, 1}, ClusterSpec{2, 2}}) {
      World w(spec, cfg);
      std::vector<std::complex<double>> cs;
      w.run([&](mvx::Communicator& c) {
        FtResult r = run_ft(c, NasClass::S);
        if (c.rank() == 0) cs = r.checksums;
      });
      if (reference.empty()) {
        reference = cs;
      } else {
        ASSERT_EQ(cs.size(), reference.size());
        for (std::size_t i = 0; i < cs.size(); ++i) {
          EXPECT_NEAR(cs[i].real(), reference[i].real(), 1e-6) << "iter " << i;
          EXPECT_NEAR(cs[i].imag(), reference[i].imag(), 1e-6) << "iter " << i;
        }
      }
    }
  }
}

TEST(NasFt, ChecksumDecaysMonotonically) {
  // The evolution factor exp(-4π²α|k|²t) damps the field each step, so the
  // checksum magnitude must shrink over iterations.
  World w(ClusterSpec{2, 2}, Config::enhanced(4, Policy::EPC));
  std::vector<std::complex<double>> cs;
  w.run([&](mvx::Communicator& c) {
    FtResult r = run_ft(c, NasClass::S);
    if (c.rank() == 0) cs = r.checksums;
  });
  for (std::size_t i = 1; i < cs.size(); ++i) {
    EXPECT_LT(std::abs(cs[i]), std::abs(cs[i - 1]) + 1e-12);
  }
}

TEST(NasFt, RejectsBadDecomposition) {
  World w(ClusterSpec{3, 1}, Config{});
  EXPECT_THROW(w.run([](mvx::Communicator& c) { run_ft(c, NasClass::S); }),
               std::invalid_argument);
}

}  // namespace
}  // namespace ib12x::nas
