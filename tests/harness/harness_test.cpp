// Bench-harness plumbing: the table printer, size labels, sweep helper, and
// the Runner's measurement semantics (determinism, steady-state skipping,
// direction accounting).
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/table.hpp"

namespace ib12x::harness {
namespace {

TEST(Table, ValuesRoundTrip) {
  Table t("demo", "size");
  t.add_column("a");
  t.add_column("b");
  t.add_row("1K", {1.5, 2.5});
  t.add_row("2K", {3.5, 4.5});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.value(0, 1), 2.5);
  EXPECT_EQ(t.value(1, 0), 3.5);
  EXPECT_EQ(t.row_label(1), "2K");
}

TEST(Table, CsvOutput) {
  Table t("demo", "size");
  t.add_column("col");
  t.add_row("8", {1.25});
  char buf[256] = {};
  std::FILE* mem = fmemopen(buf, sizeof(buf), "w");
  t.print_csv(mem, 2);
  std::fclose(mem);
  EXPECT_STREQ(buf, "size,col\n8,1.25\n");
}

TEST(SizeLabel, HumanUnits) {
  EXPECT_EQ(size_label(1), "1");
  EXPECT_EQ(size_label(512), "512");
  EXPECT_EQ(size_label(1024), "1K");
  EXPECT_EQ(size_label(16 * 1024), "16K");
  EXPECT_EQ(size_label(1 << 20), "1M");
  EXPECT_EQ(size_label(1500), "1500");  // non-round sizes stay in bytes
}

TEST(Pow2Sizes, SweepRange) {
  auto v = pow2_sizes(16, 128);
  EXPECT_EQ(v, (std::vector<std::int64_t>{16, 32, 64, 128}));
  EXPECT_THROW(pow2_sizes(0, 8), std::invalid_argument);
  EXPECT_THROW(pow2_sizes(64, 16), std::invalid_argument);
}

TEST(TelemetryTable, ExposesRendezvousAndDoorbellCounters) {
  // The per-layer telemetry table every bench prints must carry the
  // rendezvous-pipeline counters and the HCA doorbell gauge, so bench output
  // records pin-down-cache and batching behaviour alongside bandwidth.
  mvx::Config cfg = mvx::Config::enhanced(4, mvx::Policy::EPC);
  cfg.rndv_pipeline = true;
  mvx::World w(mvx::ClusterSpec{2, 1}, cfg);
  w.run([](mvx::Communicator& c) {
    constexpr std::size_t kBytes = 1 << 20;
    std::vector<std::byte> buf(kBytes);
    if (c.rank() == 0) {
      c.send(buf.data(), kBytes, mvx::BYTE, 1, 0);
    } else {
      c.recv(buf.data(), kBytes, mvx::BYTE, 0, 0);
    }
  });

  const Table t = telemetry_table(w);
  std::map<std::string, double> rows;
  for (std::size_t i = 0; i < t.row_count(); ++i) rows[t.row_label(i)] = t.value(i, 0);
  for (const char* name :
       {"rndv.rts_sent", "rndv.bytes_sent", "rndv.stripes_posted", "rndv.reg_cache_hits",
        "rndv.reg_cache_misses", "rndv.reg_cache_evictions", "rndv.cts_chunks",
        "rndv.pipeline_depth", "hca.doorbells"}) {
    ASSERT_TRUE(rows.count(name)) << name << " missing from telemetry table";
  }
  EXPECT_GT(rows["rndv.cts_chunks"], 0.0);
  EXPECT_GT(rows["rndv.pipeline_depth"], 0.0);
  EXPECT_GT(rows["hca.doorbells"], 0.0);
}

TEST(TelemetryTable, ExposesShardGaugesInShardedRuns) {
  // Under sim_shards > 1 the bench-harness telemetry table must surface the
  // parallel-engine group: shard count, epochs, cross-shard events, mailbox
  // high water, and one barrier-wait wall gauge per shard.
  mvx::Config cfg = mvx::Config::enhanced(4, mvx::Policy::EPC);
  cfg.lazy_connect = false;
  cfg.sim_shards = 2;
  mvx::World w(mvx::ClusterSpec{2, 1}, cfg);
  w.run([](mvx::Communicator& c) {
    constexpr std::size_t kBytes = 1 << 20;
    std::vector<std::byte> buf(kBytes);
    if (c.rank() == 0) {
      c.send(buf.data(), kBytes, mvx::BYTE, 1, 0);
    } else {
      c.recv(buf.data(), kBytes, mvx::BYTE, 0, 0);
    }
  });

  const Table t = telemetry_table(w);
  std::map<std::string, double> rows;
  for (std::size_t i = 0; i < t.row_count(); ++i) rows[t.row_label(i)] = t.value(i, 0);
  for (const char* name :
       {"sim.shard.count", "sim.shard.epochs", "sim.shard.cross_events",
        "sim.shard.mailbox_hwm", "sim.shard.wall.barrier_ns.s0",
        "sim.shard.wall.barrier_ns.s1"}) {
    ASSERT_TRUE(rows.count(name)) << name << " missing from telemetry table";
  }
  EXPECT_EQ(rows["sim.shard.count"], 2.0);
  EXPECT_GT(rows["sim.shard.epochs"], 0.0);
  EXPECT_GT(rows["sim.shard.cross_events"], 0.0);
  EXPECT_GE(rows["sim.shard.mailbox_hwm"], 1.0);
}

TEST(TelemetryTable, ExposesSwitchGaugesOnRoutedTopologies) {
  // On a routed topology the per-layer table must carry the fabric.switch.*
  // group: switch count, routed packets, stall/drop counters, the output
  // queue high-water mark, and the hops histogram.
  mvx::Config cfg = mvx::Config::enhanced(2, mvx::Policy::EPC);
  cfg.topo.shape = ib::TopoShape::FatTree;
  cfg.topo.contention = true;
  mvx::World w(mvx::ClusterSpec{4, 1}, cfg);
  w.run([](mvx::Communicator& c) {
    constexpr std::size_t kBytes = 256 * 1024;
    const int peer = (c.rank() + c.size() / 2) % c.size();
    std::vector<std::byte> out(kBytes), in(kBytes);
    c.sendrecv(out.data(), kBytes, mvx::BYTE, peer, 0, in.data(), kBytes, mvx::BYTE, peer, 0);
  });

  const Table t = telemetry_table(w);
  std::map<std::string, double> rows;
  for (std::size_t i = 0; i < t.row_count(); ++i) rows[t.row_label(i)] = t.value(i, 0);
  for (const char* name :
       {"fabric.switch.count", "fabric.switch.routed_pkts", "fabric.switch.stalls",
        "fabric.switch.drops", "fabric.switch.queue_hwm_bytes", "fabric.switch.hops.h1",
        "fabric.switch.hops.h3", "fabric.switch.hops.h5"}) {
    ASSERT_TRUE(rows.count(name)) << name << " missing from telemetry table";
  }
  EXPECT_GT(rows["fabric.switch.count"], 1.0);
  EXPECT_GT(rows["fabric.switch.routed_pkts"], 0.0);
  EXPECT_GT(rows["fabric.switch.queue_hwm_bytes"], 0.0);
  EXPECT_EQ(rows["fabric.switch.drops"], 0.0);  // lossless fabric
  EXPECT_GT(rows["fabric.switch.hops.h1"] + rows["fabric.switch.hops.h3"] +
                rows["fabric.switch.hops.h5"],
            0.0);
}

TEST(TelemetryTable, ExposesVciCountersWhenEnabled) {
  // With several VCIs and modeled threads the per-layer table must surface
  // the vci.* group: per-VCI send counts, shared-VCI lock contentions, the
  // progress-fiber wakeups, and the credit-split high-water mark.
  mvx::Config cfg;
  cfg.vci.count = 2;
  cfg.vci.threads = 2;
  mvx::World w(mvx::ClusterSpec{2, 1}, cfg);
  w.run([](mvx::Communicator& c) {
    const int t = c.thread_id();
    for (int i = 0; i < 8; ++i) {
      std::vector<std::byte> buf(512);
      if (c.rank() == 0) {
        c.send(buf.data(), buf.size(), mvx::BYTE, 1, t * 100 + i);
      } else {
        c.recv(buf.data(), buf.size(), mvx::BYTE, 0, t * 100 + i);
      }
    }
  });

  const Table t = telemetry_table(w);
  std::map<std::string, double> rows;
  for (std::size_t i = 0; i < t.row_count(); ++i) rows[t.row_label(i)] = t.value(i, 0);
  for (const char* name : {"vci.sends.v0", "vci.sends.v1", "vci.lock_contentions",
                           "vci.progress_wakeups", "vci.credit_split"}) {
    ASSERT_TRUE(rows.count(name)) << name << " missing from telemetry table";
  }
  EXPECT_GT(rows["vci.sends.v0"] + rows["vci.sends.v1"], 0.0);
  EXPECT_GT(rows["vci.progress_wakeups"], 0.0);
  EXPECT_GT(rows["vci.credit_split"], 0.0);
}

TEST(Runner, MeasurementsAreDeterministic) {
  BenchParams bp;
  bp.lat_iters = 30;
  bp.lat_skip = 5;
  Runner a(mvx::ClusterSpec{2, 1}, mvx::Config::enhanced(4, mvx::Policy::EPC), bp);
  Runner b(mvx::ClusterSpec{2, 1}, mvx::Config::enhanced(4, mvx::Policy::EPC), bp);
  EXPECT_DOUBLE_EQ(a.latency_us(1024), b.latency_us(1024));
  EXPECT_DOUBLE_EQ(a.uni_bw_mbs(65536), b.uni_bw_mbs(65536));
}

TEST(Runner, LatencyMonotoneInSize) {
  Runner r(mvx::ClusterSpec{2, 1}, mvx::Config::original());
  double prev = 0;
  for (std::int64_t bytes : {1L, 1024L, 65536L, 1L << 20}) {
    const double us = r.latency_us(bytes);
    EXPECT_GT(us, prev) << bytes;
    prev = us;
  }
}

TEST(Runner, BiBwExceedsUniBw) {
  BenchParams bp;
  bp.bw_iters = 8;
  bp.bw_skip = 2;
  Runner r(mvx::ClusterSpec{2, 1}, mvx::Config::enhanced(4, mvx::Policy::EPC), bp);
  const double uni = r.uni_bw_mbs(1 << 20);
  const double bi = r.bi_bw_mbs(1 << 20);
  EXPECT_GT(bi, uni * 1.5);
  EXPECT_LT(bi, uni * 2.0);
}

TEST(Runner, AlltoallScalesWithSize) {
  Runner r(mvx::ClusterSpec{2, 2}, mvx::Config::enhanced(4, mvx::Policy::EPC));
  const double small = r.alltoall_us(16 * 1024);
  const double large = r.alltoall_us(256 * 1024);
  EXPECT_GT(large, small * 4);  // 16x the data, at least 4x the time
}

TEST(Runner, ExtraRanksAreHarmlessForPairTests) {
  // latency/bw use ranks 0 and 1 only; additional ranks must not deadlock.
  Runner r(mvx::ClusterSpec{2, 2}, mvx::Config::original());
  EXPECT_GT(r.latency_us(8), 0.0);
}

}  // namespace
}  // namespace ib12x::harness
