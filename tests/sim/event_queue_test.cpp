#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace ib12x::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.pushed(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    Time t = 0;
    q.pop(t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    q.push(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    Time t = 0;
    q.pop(t)();
  }
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, MixedTimesAndTies) {
  EventQueue q;
  std::vector<int> order;
  q.push(5, [&] { order.push_back(0); });
  q.push(5, [&] { order.push_back(1); });
  q.push(1, [&] { order.push_back(2); });
  q.push(5, [&] { order.push_back(3); });
  Time t = 0;
  std::vector<Time> times;
  while (!q.empty()) {
    q.pop(t)();
    times.push_back(t);
  }
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1, 3}));
  EXPECT_EQ(times, (std::vector<Time>{1, 5, 5, 5}));
}

TEST(EventQueue, NextTimeTracksEarliest) {
  EventQueue q;
  q.push(50, [] {});
  q.push(20, [] {});
  EXPECT_EQ(q.next_time(), 20);
  Time t = 0;
  q.pop(t);
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueue, SameInstantPushesDuringDrainRunFifo) {
  // Events scheduled for the instant currently being drained take the FIFO
  // lane; events for that instant already sitting in the heap (pushed from
  // an earlier instant, so with smaller sequence numbers) must still run
  // first.  This is the ordering contract the CQE demux relies on.
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&] {
    order.push_back(0);
    q.push(10, [&] { order.push_back(2); });
    q.push(10, [&] { order.push_back(3); });
  });
  q.push(10, [&] { order.push_back(1); });
  Time t = 0;
  while (!q.empty()) q.pop(t)();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t, 10);
  EXPECT_EQ(q.lane_pushed(), 2u);
  EXPECT_EQ(q.heap_pushed(), 2u);
}

TEST(EventQueue, PopAtOrBeforeRespectsDeadline) {
  EventQueue q;
  Time t = 0;
  Event fn;
  q.push(10, [] {});
  q.push(20, [] {});
  ASSERT_TRUE(q.pop_at_or_before(15, t, fn));
  EXPECT_EQ(t, 10);
  EXPECT_FALSE(q.pop_at_or_before(15, t, fn));
  // A same-instant event scheduled at the popped instant is still <= deadline.
  q.push(10, [] {});
  ASSERT_TRUE(q.pop_at_or_before(15, t, fn));
  EXPECT_EQ(t, 10);
  ASSERT_TRUE(q.pop_at_or_before(20, t, fn));
  EXPECT_EQ(t, 20);
  // Lane events postdating the deadline stay queued.
  q.push(20, [] {});
  EXPECT_FALSE(q.pop_at_or_before(19, t, fn));
  ASSERT_TRUE(q.pop_at_or_before(20, t, fn));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, WarmQueueRunsAllocationFree) {
  // Slab slots and lane ring storage recycle: after one warm-up round the
  // same workload must not allocate again.
  EventQueue q;
  Time t = 0;
  auto run_round = [&](Time base) {
    for (int i = 0; i < 200; ++i) q.push(base + i % 3, [] {});
    while (!q.empty()) q.pop(t)();
  };
  run_round(0);
  const std::uint64_t warm = q.alloc_events();
  run_round(1000);
  run_round(2000);
  EXPECT_EQ(q.alloc_events(), warm);
}

TEST(EventQueue, EventsOwnMoveOnlyState) {
  EventQueue q;
  auto p = std::make_unique<int>(7);
  int got = 0;
  q.push(1, [p = std::move(p), &got] { got = *p; });
  Time t = 0;
  q.pop(t)();
  EXPECT_EQ(got, 7);
}

TEST(EventQueue, PushedCounterIsMonotone) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  Time t = 0;
  q.pop(t);
  EXPECT_EQ(q.pushed(), 2u);
  q.push(3, [] {});
  EXPECT_EQ(q.pushed(), 3u);
}

}  // namespace
}  // namespace ib12x::sim
