#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ib12x::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.pushed(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    Time t = 0;
    q.pop(t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    q.push(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    Time t = 0;
    q.pop(t)();
  }
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, MixedTimesAndTies) {
  EventQueue q;
  std::vector<int> order;
  q.push(5, [&] { order.push_back(0); });
  q.push(5, [&] { order.push_back(1); });
  q.push(1, [&] { order.push_back(2); });
  q.push(5, [&] { order.push_back(3); });
  Time t = 0;
  std::vector<Time> times;
  while (!q.empty()) {
    q.pop(t)();
    times.push_back(t);
  }
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1, 3}));
  EXPECT_EQ(times, (std::vector<Time>{1, 5, 5, 5}));
}

TEST(EventQueue, NextTimeTracksEarliest) {
  EventQueue q;
  q.push(50, [] {});
  q.push(20, [] {});
  EXPECT_EQ(q.next_time(), 20);
  Time t = 0;
  q.pop(t);
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueue, PushedCounterIsMonotone) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  Time t = 0;
  q.pop(t);
  EXPECT_EQ(q.pushed(), 2u);
  q.push(3, [] {});
  EXPECT_EQ(q.pushed(), 3u);
}

}  // namespace
}  // namespace ib12x::sim
