#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace ib12x::sim {
namespace {

TEST(Fiber, StartsOnlyWhenResumed) {
  bool ran = false;
  Fiber f([&] { ran = true; });
  EXPECT_FALSE(f.started());
  EXPECT_FALSE(ran);
  f.resume();
  EXPECT_TRUE(f.started());
  EXPECT_TRUE(f.finished());
  EXPECT_TRUE(ran);
}

TEST(Fiber, YieldAlternatesWithHost) {
  std::vector<int> order;
  Fiber* fp = nullptr;
  Fiber f([&] {
    order.push_back(1);
    fp->yield();
    order.push_back(3);
    fp->yield();
    order.push_back(5);
  });
  fp = &f;
  f.resume();
  order.push_back(2);
  EXPECT_FALSE(f.finished());
  f.resume();
  order.push_back(4);
  f.resume();
  order.push_back(6);
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(Fiber, ManyFibersInterleaveIndependently) {
  constexpr int kFibers = 32;
  constexpr int kYields = 8;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<int> progress(kFibers, 0);
  std::vector<Fiber*> handles(kFibers, nullptr);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&progress, &handles, i] {
      for (int k = 0; k < kYields; ++k) {
        ++progress[static_cast<std::size_t>(i)];
        handles[static_cast<std::size_t>(i)]->yield();
      }
    }));
    handles[static_cast<std::size_t>(i)] = fibers.back().get();
  }
  // Round-robin: every fiber advances one step per sweep, on its own stack.
  for (int k = 0; k <= kYields; ++k) {
    for (auto& f : fibers) {
      if (!f->finished()) f->resume();
    }
  }
  for (int i = 0; i < kFibers; ++i) {
    EXPECT_TRUE(fibers[static_cast<std::size_t>(i)]->finished());
    EXPECT_EQ(progress[static_cast<std::size_t>(i)], kYields);
  }
}

TEST(Fiber, StackSurvivesDeepLocals) {
  // Locals on the fiber stack must keep their values across yields.
  Fiber* fp = nullptr;
  long sum = 0;
  Fiber f([&] {
    long acc = 0;
    int scratch[1024];
    for (int i = 0; i < 1024; ++i) scratch[i] = i;
    for (int i = 0; i < 1024; ++i) {
      acc += scratch[i];
      if (i % 256 == 0) fp->yield();
    }
    sum = acc;
  });
  fp = &f;
  while (!f.finished()) f.resume();
  EXPECT_EQ(sum, 1023L * 1024 / 2);
}

}  // namespace
}  // namespace ib12x::sim
