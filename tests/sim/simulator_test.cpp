#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace ib12x::sim {
namespace {

TEST(Time, UnitConversionsRoundTrip) {
  EXPECT_EQ(microseconds(1.0), 1'000'000);
  EXPECT_DOUBLE_EQ(to_us(microseconds(3.5)), 3.5);
  EXPECT_DOUBLE_EQ(to_ns(nanoseconds(250)), 250.0);
  EXPECT_EQ(seconds(1.0), kSecond);
}

TEST(Time, TransferTimeMatchesRate) {
  // 3 GB/s moves 3 bytes per ns, so 3000 bytes take 1 us.
  EXPECT_EQ(transfer_time(3000, 3.0), microseconds(1.0));
  // 1 MiB at 1 GB/s ≈ 1048.576 us.
  EXPECT_NEAR(to_us(transfer_time(1 << 20, 1.0)), 1048.576, 0.001);
}

TEST(Time, RateComputation) {
  Time t = transfer_time(1'000'000, 2.0);  // 1 MB at 2 GB/s
  EXPECT_NEAR(rate_mb_per_s(1'000'000, t), 2000.0, 0.1);
  EXPECT_EQ(rate_mb_per_s(100, 0), 0.0);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator s;
  Time seen = -1;
  s.at(100, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator s;
  std::vector<Time> stamps;
  s.at(10, [&] {
    stamps.push_back(s.now());
    s.after(5, [&] { stamps.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(stamps, (std::vector<Time>{10, 15}));
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator s;
  s.at(100, [] {});
  s.run();
  EXPECT_THROW(s.at(50, [] {}), std::logic_error);
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator s;
  int fired = 0;
  s.at(10, [&] { ++fired; });
  s.at(20, [&] { ++fired; });
  s.at(30, [&] { ++fired; });
  s.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.events_pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockToDeadline) {
  Simulator s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Simulator, EventCountersTrack) {
  Simulator s;
  for (int i = 0; i < 10; ++i) s.at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_processed(), 10u);
  EXPECT_EQ(s.events_scheduled(), 10u);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, CascadedEventsRunSameInstant) {
  Simulator s;
  std::vector<int> order;
  s.at(7, [&] {
    order.push_back(1);
    s.after(0, [&] { order.push_back(3); });
    order.push_back(2);
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 7);
}

}  // namespace
}  // namespace ib12x::sim
