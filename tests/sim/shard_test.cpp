#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ib12x::sim {
namespace {

TEST(Mailbox, FifoDrainAndCounters) {
  Mailbox mb;
  EXPECT_TRUE(mb.empty());
  std::vector<int> order;
  mb.put(10, [&] { order.push_back(1); });
  mb.put(5, [&] { order.push_back(2); });  // FIFO, not time-sorted
  mb.put(20, [&] { order.push_back(3); });
  EXPECT_FALSE(mb.empty());
  EXPECT_EQ(mb.high_water(), 3u);

  std::vector<Time> times;
  mb.drain([&](Time when, Event fn) {
    times.push_back(when);
    fn();
  });
  EXPECT_TRUE(mb.empty());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(times, (std::vector<Time>{10, 5, 20}));
  EXPECT_EQ(mb.total(), 3u);

  // High water persists across drains; total accumulates.
  mb.put(1, [] {});
  mb.drain([](Time, Event fn) { fn(); });
  EXPECT_EQ(mb.high_water(), 3u);
  EXPECT_EQ(mb.total(), 4u);
}

TEST(EpochBarrier, RepeatedPhasesStayAligned) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  EpochBarrier barrier(kThreads);
  std::atomic<int> in_phase{0};
  std::atomic<bool> torn{false};

  auto body = [&] {
    bool sense = false;
    for (int r = 0; r < kRounds; ++r) {
      in_phase.fetch_add(1);
      barrier.arrive_and_wait(sense);
      // Everyone is past the barrier: the phase counter must show a full
      // round (a torn barrier would let a fast thread lap a slow one).
      if (in_phase.load() < kThreads * (r + 1)) torn = true;
      barrier.arrive_and_wait(sense);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 1; t < kThreads; ++t) threads.emplace_back(body);
  body();
  for (auto& t : threads) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(in_phase.load(), kThreads * kRounds);
}

// A deterministic relay: each hop logs (shard, time, value) on its current
// simulator and posts the next hop to the other simulator at now + gap.
// Running it with both "shards" aliased to one Simulator is the oracle.
struct Relay {
  Simulator* sims[2] = {nullptr, nullptr};
  Time gap = 0;
  int hops = 0;
  std::vector<std::tuple<int, Time, int>> log;

  void step(int which, int value) {
    Simulator& cur = *sims[which];
    log.emplace_back(which, cur.now(), value);
    if (value >= hops) return;
    Relay* self = this;
    const int next = sims[0] == sims[1] ? which : 1 - which;
    cur.post(*sims[1 - which], cur.now() + gap,
             [self, next, value] { self->step(next, value + 1); });
  }

  void start() {
    Relay* self = this;
    sims[0]->at(0, [self] { self->step(0, 0); });
  }
};

TEST(ShardEngine, TwoShardRelayMatchesSingleSimOracle) {
  const Time W = nanoseconds(700);

  Relay oracle;
  Simulator single;
  oracle.sims[0] = oracle.sims[1] = &single;
  oracle.gap = W;
  oracle.hops = 50;
  oracle.start();
  single.run();

  Relay sharded;
  Simulator a;
  Simulator b;
  sharded.sims[0] = &a;
  sharded.sims[1] = &b;
  sharded.gap = W;
  sharded.hops = 50;
  ShardEngine engine({&a, &b}, W);
  sharded.start();
  engine.run();

  // Same hop times and values; the shard column alternates in the sharded
  // run but the oracle logged everything on "shard 0".
  ASSERT_EQ(sharded.log.size(), oracle.log.size());
  for (std::size_t i = 0; i < oracle.log.size(); ++i) {
    EXPECT_EQ(std::get<1>(sharded.log[i]), std::get<1>(oracle.log[i])) << i;
    EXPECT_EQ(std::get<2>(sharded.log[i]), std::get<2>(oracle.log[i])) << i;
    EXPECT_EQ(std::get<0>(sharded.log[i]), static_cast<int>(i % 2)) << i;
  }
  EXPECT_EQ(a.now() > 0 || b.now() > 0, true);
  EXPECT_EQ(a.events_processed() + b.events_processed(), single.events_processed());

  // Telemetry: 50 hand-offs crossed shards, every epoch advanced.
  EXPECT_EQ(engine.cross_events(), 50u);
  EXPECT_GE(engine.epochs(), 1u);
  EXPECT_GE(engine.mailbox_high_water(), 1u);
}

TEST(ShardEngine, PreRunPostsDeliverDirectly) {
  Simulator a;
  Simulator b;
  ShardEngine engine({&a, &b}, nanoseconds(100));
  // Engine attached but not running: post() must behave like plain wiring
  // (used by World construction before run()).
  Time seen = -1;
  a.post(b, 42, [&] { seen = b.now(); });
  EXPECT_FALSE(b.idle());
  engine.run();
  EXPECT_EQ(seen, 42);
}

TEST(ShardEngine, WindowViolationThrowsThroughRun) {
  const Time W = nanoseconds(100);
  Simulator a;
  Simulator b;
  ShardEngine engine({&a, &b}, W);
  a.at(0, [&] {
    // now + 1 < window_end (= T0 + W): the conservative contract is broken
    // and the engine must refuse rather than silently de-synchronize.
    a.post(b, a.now() + 1, [] {});
  });
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(ShardEngine, ModelErrorOnSecondaryShardIsRethrown) {
  const Time W = nanoseconds(100);
  Simulator a;
  Simulator b;
  ShardEngine engine({&a, &b}, W);
  // Keep shard 0 busy past the failure instant so the abort path has to
  // interrupt it rather than find it already drained.
  for (int i = 0; i < 10; ++i) a.at(i * W, [] {});
  b.at(W, [] { throw std::runtime_error("shard 1 model error"); });
  EXPECT_THROW(engine.run(), std::runtime_error);
  EXPECT_FALSE(engine.running());
}

TEST(ShardEngine, FourShardRingIsDeterministicAcrossRuns) {
  const Time W = nanoseconds(300);
  auto run_ring = [&](std::vector<std::tuple<int, Time, int>>& log) {
    std::vector<Simulator> sims(4);
    std::vector<Simulator*> ptrs;
    for (auto& s : sims) ptrs.push_back(&s);
    ShardEngine engine(ptrs, W);
    struct Ring {
      std::vector<Simulator*>* sims;
      Time gap;
      std::vector<std::tuple<int, Time, int>>* log;
      void step(int which, int value) {
        Simulator& cur = *(*sims)[static_cast<std::size_t>(which)];
        log->emplace_back(which, cur.now(), value);
        if (value >= 40) return;
        Ring* self = this;
        const int next = (which + 1) % static_cast<int>(sims->size());
        cur.post(*(*sims)[static_cast<std::size_t>(next)], cur.now() + gap,
                 [self, next, value] { self->step(next, value + 1); });
      }
    };
    Ring ring{&ptrs, W, &log};
    sims[0].at(0, [&ring] { ring.step(0, 0); });
    engine.run();
  };
  std::vector<std::tuple<int, Time, int>> first;
  std::vector<std::tuple<int, Time, int>> second;
  run_ring(first);
  run_ring(second);
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 41u);
}

}  // namespace
}  // namespace ib12x::sim
