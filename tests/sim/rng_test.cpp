#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace ib12x::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, IntRangeInclusive) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    std::int64_t v = r.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values appear in 10k draws
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // crude uniformity check
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.split();
  // The child must not replay the parent's stream.
  Rng parent2(5);
  parent2.next_u64();  // parent consumed one draw for the split
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng r(13);
  std::vector<int> counts(8, 0);
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) ++counts[r.next_below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 8, draws / 80);  // within 10%
  }
}

}  // namespace
}  // namespace ib12x::sim
