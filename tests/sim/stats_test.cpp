#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ib12x::sim {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
  EXPECT_EQ(a.mean(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, SingleValue) {
  Accumulator a;
  a.add(3.5);
  EXPECT_EQ(a.min(), 3.5);
  EXPECT_EQ(a.max(), 3.5);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Series, RecordsPointsInOrder) {
  Series s;
  s.label = "bw";
  s.add(1, 10);
  s.add(2, 20);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.at_x(2), 20);
  EXPECT_TRUE(std::isnan(s.at_x(99)));
}

TEST(Histogram, BinsAndClamps) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-100.0);  // clamps into bin 0
  h.add(100.0);   // clamps into bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.bin(9), 1u);
}

TEST(Histogram, MedianApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i % 100));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

}  // namespace
}  // namespace ib12x::sim
