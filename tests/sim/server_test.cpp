#include "sim/server.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace ib12x::sim {
namespace {

TEST(Server, BackToBackReservations) {
  Server s("cpu");
  auto r1 = s.reserve(/*now=*/0, /*earliest=*/0, /*service=*/100);
  EXPECT_EQ(r1.start, 0);
  EXPECT_EQ(r1.finish, 100);
  auto r2 = s.reserve(0, 0, 50);
  EXPECT_EQ(r2.start, 100);  // queues behind r1
  EXPECT_EQ(r2.finish, 150);
}

TEST(Server, EarliestDelaysStart) {
  Server s;
  auto r = s.reserve(0, 500, 100);
  EXPECT_EQ(r.start, 500);
  EXPECT_EQ(r.finish, 600);
}

TEST(Server, NowDelaysStart) {
  Server s;
  auto r = s.reserve(1000, 0, 10);
  EXPECT_EQ(r.start, 1000);
}

TEST(Server, IdleGapsDoNotAccumulateBusyTime) {
  Server s;
  s.reserve(0, 0, 100);
  s.reserve(1000, 0, 100);  // idle between 100 and 1000
  EXPECT_EQ(s.busy_time(), 200);
  EXPECT_EQ(s.jobs(), 2u);
}

TEST(Server, ResetStats) {
  Server s;
  s.reserve(0, 0, 42);
  s.reset_stats();
  EXPECT_EQ(s.busy_time(), 0);
  EXPECT_EQ(s.jobs(), 0u);
  // free_at is model state, not a statistic: it survives reset.
  EXPECT_EQ(s.free_at(), 42);
}

TEST(BandwidthServer, BytesAtRate) {
  BandwidthServer s("link", 2.0);  // 2 GB/s == 2 bytes/ns
  auto r = s.reserve_bytes(0, 0, 2000);
  EXPECT_EQ(r.finish - r.start, microseconds(1.0));
  EXPECT_DOUBLE_EQ(s.rate(), 2.0);
}

TEST(BandwidthServer, SerializesLikeServer) {
  BandwidthServer s("link", 1.0);
  auto r1 = s.reserve_bytes(0, 0, 1000);
  auto r2 = s.reserve_bytes(0, 0, 1000);
  EXPECT_EQ(r2.start, r1.finish);
  EXPECT_EQ(s.jobs(), 2u);
}

TEST(BandwidthServer, ZeroBytesTakeZeroTime) {
  BandwidthServer s("link", 3.0);
  auto r = s.reserve_bytes(10, 0, 0);
  EXPECT_EQ(r.start, r.finish);
}

}  // namespace
}  // namespace ib12x::sim
