#include "sim/process.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace ib12x::sim {
namespace {

TEST(Process, ComputeAdvancesVirtualTime) {
  Simulator sim;
  ProcessSet procs(sim);
  Time end = -1;
  procs.add("p0", [&](Process& p) {
    p.compute(microseconds(5));
    p.compute(microseconds(2));
    end = p.now();
  });
  procs.run_all();
  EXPECT_EQ(end, microseconds(7));
}

TEST(Process, TwoProcessesInterleaveDeterministically) {
  Simulator sim;
  ProcessSet procs(sim);
  std::vector<std::string> trace;
  procs.add("a", [&](Process& p) {
    trace.push_back("a@" + std::to_string(p.now()));
    p.compute(10);
    trace.push_back("a@" + std::to_string(p.now()));
  });
  procs.add("b", [&](Process& p) {
    trace.push_back("b@" + std::to_string(p.now()));
    p.compute(5);
    trace.push_back("b@" + std::to_string(p.now()));
  });
  procs.run_all();
  EXPECT_EQ(trace, (std::vector<std::string>{"a@0", "b@0", "b@5", "a@10"}));
}

TEST(Process, WaitableWakesBlockedProcess) {
  Simulator sim;
  ProcessSet procs(sim);
  Waitable w;
  bool flag = false;
  Time woke_at = -1;
  procs.add("waiter", [&](Process& p) {
    p.wait_until(w, [&] { return flag; });
    woke_at = p.now();
  });
  procs.add("notifier", [&](Process& p) {
    p.compute(100);
    flag = true;
    w.notify_all();
  });
  procs.run_all();
  EXPECT_EQ(woke_at, 100);
}

TEST(Process, WaitUntilRechecksPredicate) {
  Simulator sim;
  ProcessSet procs(sim);
  Waitable w;
  int counter = 0;
  procs.add("waiter", [&](Process& p) {
    p.wait_until(w, [&] { return counter >= 3; });
    EXPECT_EQ(p.now(), 30);
  });
  procs.add("ticker", [&](Process& p) {
    for (int i = 0; i < 3; ++i) {
      p.compute(10);
      ++counter;
      w.notify_all();  // first two notifies find the predicate still false
    }
  });
  procs.run_all();
}

TEST(Process, NotifyWithNoWaitersIsNoOp) {
  Simulator sim;
  Waitable w;
  w.notify_all();  // must not crash or schedule anything
  EXPECT_TRUE(sim.idle());
}

TEST(Process, ManyWaitersAllWake) {
  Simulator sim;
  ProcessSet procs(sim);
  Waitable w;
  bool open = false;
  int woke = 0;
  for (int i = 0; i < 8; ++i) {
    procs.add("w" + std::to_string(i), [&](Process& p) {
      p.wait_until(w, [&] { return open; });
      ++woke;
    });
  }
  procs.add("opener", [&](Process& p) {
    p.compute(50);
    open = true;
    w.notify_all();
  });
  procs.run_all();
  EXPECT_EQ(woke, 8);
}

TEST(Process, DeadlockIsDiagnosed) {
  Simulator sim;
  ProcessSet procs(sim);
  Waitable w;
  procs.add("stuck", [&](Process& p) {
    p.wait(w);  // nobody will ever notify
  });
  EXPECT_THROW(procs.run_all(), std::runtime_error);
}

TEST(Process, BodyExceptionPropagates) {
  Simulator sim;
  ProcessSet procs(sim);
  procs.add("thrower", [](Process& p) {
    p.compute(1);
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(procs.run_all(), std::runtime_error);
}

TEST(Process, YieldLetsSameInstantEventsRun) {
  Simulator sim;
  ProcessSet procs(sim);
  bool event_ran = false;
  procs.add("p", [&](Process& p) {
    p.simulator().after(0, [&] { event_ran = true; });
    EXPECT_FALSE(event_ran);
    p.yield();
    EXPECT_TRUE(event_ran);
    EXPECT_EQ(p.now(), 0);
  });
  procs.run_all();
}

TEST(Process, NegativeComputeThrows) {
  Simulator sim;
  ProcessSet procs(sim);
  procs.add("p", [](Process& p) { p.compute(-1); });
  EXPECT_THROW(procs.run_all(), std::logic_error);
}

TEST(Process, RunIsDeterministicAcrossRepeats) {
  auto run_once = [] {
    Simulator sim;
    ProcessSet procs(sim);
    Waitable w;
    std::vector<Time> stamps;
    int turns = 0;
    procs.add("ping", [&](Process& p) {
      for (int i = 0; i < 5; ++i) {
        p.compute(3);
        ++turns;
        w.notify_all();
        stamps.push_back(p.now());
      }
    });
    procs.add("pong", [&](Process& p) {
      p.wait_until(w, [&] { return turns >= 5; });
      stamps.push_back(p.now());
    });
    procs.run_all();
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ib12x::sim
