// Ablation: virtual communication interfaces — the Zambre-style message-rate
// scaling argument on the mvx substrate.  A pair of ranks exchanges small
// messages from `threads` modeled app threads per rank; each thread streams
// its own tag range through a non-blocking window.  The grid sweeps
// threads x VCIs on the default crossbar and on a routed fat-tree:
//
//   dedicated — vci.mapping = RoundRobin, so with vcis >= threads every
//               thread owns a VCI (its own QP slice, CQ share, sequence
//               space, and progress server) and message rate scales;
//   shared    — vci.mapping = Shared: every thread funnels through VCI 0,
//               serializing on its lock and progress server — the flatline.
//
// Reported per cell: aggregate message rate (Kmsg/s of virtual time).  The
// headline checks pin the paper-shaped result: 4 threads on 4 dedicated
// VCIs deliver >= 2x the rate of 4 threads on one shared VCI, and the
// shared-mapping curve stays flat from 1 to 8 threads.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

namespace {

constexpr int kMsgsPerThread = 384;
constexpr std::size_t kBytes = 8;
constexpr int kWindow = 32;

mvx::Config vci_config(int threads, int vcis, mvx::Config::VciConfig::Mapping mapping,
                       bool fat_tree) {
  mvx::Config cfg = mvx::Config::enhanced(1, mvx::Policy::Binding);
  cfg.vci.threads = threads;
  cfg.vci.count = vcis;
  cfg.vci.mapping = mapping;
  if (fat_tree) cfg.topo.shape = ib::TopoShape::FatTree;
  return cfg;
}

/// Aggregate message rate in Kmsg/s of virtual time: rank 0's threads stream
/// to rank 1's, each thread on its own tag range, 32-deep windows.
double message_rate(int threads, int vcis, mvx::Config::VciConfig::Mapping mapping,
                    bool fat_tree) {
  mvx::World w(mvx::ClusterSpec{2, 1}, vci_config(threads, vcis, mapping, fat_tree));
  const sim::Time t0 = w.simulator().now();
  w.run([](mvx::Communicator& c) {
    const int t = c.thread_id();
    std::vector<std::byte> buf(kBytes, std::byte{0x5A});
    std::vector<mvx::Request> reqs;
    for (int i = 0; i < kMsgsPerThread; ++i) {
      const int tag = t * 10000 + i;
      if (c.rank() == 0) {
        reqs.push_back(c.isend(buf.data(), kBytes, mvx::BYTE, 1, tag));
      } else {
        reqs.push_back(c.irecv(buf.data(), kBytes, mvx::BYTE, 0, tag));
      }
      if (static_cast<int>(reqs.size()) == kWindow) {
        c.waitall(reqs);
        reqs.clear();
      }
    }
    c.waitall(reqs);
  });
  const double secs = sim::to_s(w.end_time() - t0);
  const double msgs = static_cast<double>(threads) * kMsgsPerThread;
  return msgs / secs / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Ablation — virtual communication interfaces (threads x VCIs)\n");
  std::printf("  pair of ranks, %d x %zu B msgs per thread, %d-deep windows; Kmsg/s of "
              "virtual time\n",
              kMsgsPerThread, kBytes, kWindow);

  const std::vector<int> kSweep = {1, 2, 4, 8};
  using Mapping = mvx::Config::VciConfig::Mapping;

  double dedicated4 = 0, shared4 = 0;
  for (const bool fat_tree : {false, true}) {
    harness::Table t(std::string("vci grid (RoundRobin) — ") +
                         (fat_tree ? "fat-tree" : "crossbar"),
                     "threads");
    for (int vcis : kSweep) t.add_column(std::to_string(vcis) + " VCI");
    for (int threads : kSweep) {
      std::vector<double> row;
      for (int vcis : kSweep) {
        const double rate = message_rate(threads, vcis, Mapping::RoundRobin, fat_tree);
        row.push_back(rate);
        if (!fat_tree && threads == 4) {
          if (vcis == 1) shared4 = rate;
          if (vcis == 4) dedicated4 = rate;
        }
      }
      t.add_row(std::to_string(threads), row);
    }
    emit(t);
  }

  // The shared-mapping flatline: 4 VCIs exist, but every thread is pinned to
  // VCI 0 — adding threads buys (almost) nothing.
  harness::Table flat("vci shared-mapping flatline (4 VCIs, crossbar)", "threads");
  flat.add_column("shared Kmsg/s");
  flat.add_column("dedicated Kmsg/s");
  double flat1 = 0, flat8 = 0;
  for (int threads : kSweep) {
    const double shared = message_rate(threads, 4, Mapping::Shared, false);
    const double dedicated = message_rate(threads, 4, Mapping::RoundRobin, false);
    if (threads == 1) flat1 = shared;
    if (threads == 8) flat8 = shared;
    flat.add_row(std::to_string(threads), {shared, dedicated});
  }
  emit(flat);

  // Headline: threads x dedicated VCIs scale message rate; threads on one
  // shared VCI flatline (Zambre et al., reproduced on the simulated stack).
  harness::print_check("4 threads: 4 dedicated VCIs / 1 shared VCI message rate",
                       dedicated4 / shared4, 2.0, 1e9);
  harness::print_check("shared mapping: 8-thread / 1-thread message rate (flatline)",
                       flat8 / flat1, 0.0, 1.5);
  return 0;
}
