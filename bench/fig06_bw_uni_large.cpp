// Figure 6: large-message uni-directional bandwidth (16 KiB – 1 MiB).
// Paper claims: original peaks ~1661 MB/s; EPC and even striping both reach
// ~2745 MB/s at 1 MiB, but striping is clearly worse than EPC in the
// 16–64 KiB range (per-stripe descriptor posting, per-stripe ACK/CQE
// processing, chunks too small to pipeline) before the curves converge.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Fig 6 — large-message uni-directional bandwidth (MB/s), window 64\n");
  const std::vector<Column> cols = {
      original(),
      policy_col(4, mvx::Policy::EvenStriping),
      epc(4),
  };
  const auto sizes = harness::pow2_sizes(16 * 1024, 1 << 20);

  harness::Table t("uni-directional bandwidth, large messages (MB/s)", "bytes");
  std::vector<std::unique_ptr<harness::Runner>> runners;
  for (const Column& c : cols) {
    t.add_column(c.label);
    runners.push_back(std::make_unique<harness::Runner>(mvx::ClusterSpec{2, 1}, c.cfg,
                                                        bench_params()));
  }
  for (auto bytes : sizes) {
    std::vector<double> row;
    for (auto& r : runners) row.push_back(r->uni_bw_mbs(bytes));
    t.add_row(harness::size_label(bytes), row);
  }
  emit(t);

  const std::size_t last = t.row_count() - 1;
  harness::print_check("orig peak MB/s @1M (paper 1661)", t.value(last, 0), 1450, 1850);
  harness::print_check("EPC-4QP peak MB/s @1M (paper 2745)", t.value(last, 2), 2500, 3000);
  harness::print_check("EPC gain over orig @1M, % (paper ~65)",
                       (t.value(last, 2) / t.value(last, 0) - 1) * 100, 45, 85);
  harness::print_check("EPC / striping @16K (striping worse, >1.08)",
                       t.value(0, 2) / t.value(0, 1), 1.08, 3.0);
  harness::print_check("EPC / striping @1M (converged, ~1)", t.value(last, 2) / t.value(last, 1),
                       0.93, 1.07);
  return 0;
}
