// Shared plumbing for the figure-regeneration binaries: the configurations
// each paper figure compares, and environment-variable overrides so a user
// can re-run a figure with more iterations (IB12X_BW_ITERS, IB12X_LAT_ITERS)
// or emit CSV (IB12X_CSV=1).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "mvx/mpi.hpp"

namespace ib12x::bench {

inline int env_int(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}

inline bool csv_requested() { return env_int("IB12X_CSV", 0) != 0; }

inline harness::BenchParams bench_params() {
  harness::BenchParams bp;
  bp.lat_iters = env_int("IB12X_LAT_ITERS", bp.lat_iters);
  bp.lat_skip = bp.lat_iters / 5;
  bp.bw_iters = env_int("IB12X_BW_ITERS", bp.bw_iters);
  bp.bw_skip = std::max(1, bp.bw_iters / 6);
  bp.a2a_iters = env_int("IB12X_A2A_ITERS", bp.a2a_iters);
  bp.a2a_skip = std::max(1, bp.a2a_iters / 5);
  return bp;
}

/// A labelled configuration column of a figure.
struct Column {
  std::string label;
  mvx::Config cfg;
};

inline Column original() { return {"orig-1QP", mvx::Config::original()}; }

inline Column epc(int qps) {
  return {"EPC-" + std::to_string(qps) + "QP", mvx::Config::enhanced(qps, mvx::Policy::EPC)};
}

inline Column policy_col(int qps, mvx::Policy p) {
  return {std::string(mvx::to_string(p)) + "-" + std::to_string(qps) + "QP",
          mvx::Config::enhanced(qps, p)};
}

inline void emit(const harness::Table& table) {
  table.print(stdout);
  if (csv_requested()) {
    std::printf("\n-- csv --\n");
    table.print_csv(stdout);
  }
}

}  // namespace ib12x::bench
