// Shared plumbing for the figure-regeneration binaries: the configurations
// each paper figure compares, environment-variable overrides so a user can
// re-run a figure with more iterations (IB12X_BW_ITERS, IB12X_LAT_ITERS) or
// emit CSV (IB12X_CSV=1), and a `--json <path>` flag (or IB12X_JSON env) that
// appends every emitted table as one JSON-lines record for machine ingestion.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "mvx/mpi.hpp"

namespace ib12x::bench {

inline int env_int(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}

inline bool csv_requested() { return env_int("IB12X_CSV", 0) != 0; }

/// Where `--json <path>` (or IB12X_JSON) directed table records; empty = off.
inline std::string& json_path() {
  static std::string path;
  return path;
}

/// This binary's name, used as the "bench" field of JSON records.
inline std::string& bench_name() {
  static std::string name{"bench"};
  return name;
}

/// Parses the shared bench command line.  Every figure binary calls this
/// first; unknown arguments are left alone for bench-specific handling.
inline void init(int argc, char** argv) {
  if (argc > 0 && argv[0] != nullptr) {
    std::string prog = argv[0];
    const std::size_t slash = prog.find_last_of('/');
    bench_name() = slash == std::string::npos ? prog : prog.substr(slash + 1);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path() = argv[i + 1];
      ++i;
    }
  }
  if (json_path().empty()) {
    const char* v = std::getenv("IB12X_JSON");
    if (v != nullptr) json_path() = v;
  }
}

inline void json_escaped(std::FILE* f, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') std::fputc('\\', f);
    std::fputc(c, f);
  }
}

/// Appends `table` to the `--json` file as one JSON-lines record.
inline void emit_json(const harness::Table& table) {
  if (json_path().empty()) return;
  std::FILE* f = std::fopen(json_path().c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for append\n", json_path().c_str());
    return;
  }
  std::fprintf(f, "{\"bench\":\"");
  json_escaped(f, bench_name());
  std::fprintf(f, "\",\"table\":\"");
  json_escaped(f, table.title());
  std::fprintf(f, "\",\"row_header\":\"");
  json_escaped(f, table.row_header());
  std::fprintf(f, "\",\"columns\":[");
  for (std::size_t c = 0; c < table.column_count(); ++c) {
    std::fprintf(f, "%s\"", c == 0 ? "" : ",");
    json_escaped(f, table.column_label(c));
    std::fprintf(f, "\"");
  }
  std::fprintf(f, "],\"rows\":[");
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    std::fprintf(f, "%s{\"label\":\"", r == 0 ? "" : ",");
    json_escaped(f, table.row_label(r));
    std::fprintf(f, "\",\"values\":[");
    for (std::size_t c = 0; c < table.column_count(); ++c) {
      std::fprintf(f, "%s%.6g", c == 0 ? "" : ",", table.value(r, c));
    }
    std::fprintf(f, "]}");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

inline harness::BenchParams bench_params() {
  harness::BenchParams bp;
  bp.lat_iters = env_int("IB12X_LAT_ITERS", bp.lat_iters);
  bp.lat_skip = bp.lat_iters / 5;
  bp.bw_iters = env_int("IB12X_BW_ITERS", bp.bw_iters);
  bp.bw_skip = std::max(1, bp.bw_iters / 6);
  bp.a2a_iters = env_int("IB12X_A2A_ITERS", bp.a2a_iters);
  bp.a2a_skip = std::max(1, bp.a2a_iters / 5);
  return bp;
}

/// A labelled configuration column of a figure.
struct Column {
  std::string label;
  mvx::Config cfg;
};

/// IB12X_LEGACY_WIRING=1 pins every figure configuration to the pre-refactor
/// transport defaults (eager all-pairs wiring, per-QP receive queues) so
/// figure outputs can be regression-diffed byte for byte against runs from
/// before the lazy-connect + SRQ default flip.
inline mvx::Config apply_wiring_env(mvx::Config cfg) {
  if (env_int("IB12X_LEGACY_WIRING", 0) != 0) {
    cfg.lazy_connect = false;
    cfg.use_srq = false;
  }
  return cfg;
}

inline Column original() { return {"orig-1QP", apply_wiring_env(mvx::Config::original())}; }

inline Column epc(int qps) {
  return {"EPC-" + std::to_string(qps) + "QP",
          apply_wiring_env(mvx::Config::enhanced(qps, mvx::Policy::EPC))};
}

inline Column policy_col(int qps, mvx::Policy p) {
  return {std::string(mvx::to_string(p)) + "-" + std::to_string(qps) + "QP",
          apply_wiring_env(mvx::Config::enhanced(qps, p))};
}

inline void emit(const harness::Table& table) {
  table.print(stdout);
  if (csv_requested()) {
    std::printf("\n-- csv --\n");
    table.print_csv(stdout);
  }
  emit_json(table);
}

}  // namespace ib12x::bench
