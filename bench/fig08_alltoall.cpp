// Figure 8: MPI_Alltoall (Pallas/IMB semantics) on the 2x4 configuration —
// two nodes, four processes per node, intra-node pairs over shared memory.
// Paper claims: EPC improves Alltoall even for medium messages because the
// marker lets collective traffic stripe, unlike user-level non-blocking
// traffic; round robin and the single-rail original trail behind.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Fig 8 — MPI_Alltoall latency (us), 2 nodes x 4 processes\n");
  const std::vector<Column> cols = {
      original(),
      policy_col(4, mvx::Policy::RoundRobin),
      policy_col(4, mvx::Policy::EvenStriping),
      epc(4),
  };
  const auto sizes = harness::pow2_sizes(16 * 1024, 1 << 20);

  harness::Table t("MPI_Alltoall time per call (us), 2x4", "bytes/dest");
  std::vector<std::unique_ptr<harness::Runner>> runners;
  for (const Column& c : cols) {
    t.add_column(c.label);
    runners.push_back(std::make_unique<harness::Runner>(mvx::ClusterSpec{2, 4}, c.cfg,
                                                        bench_params()));
  }
  for (auto bytes : sizes) {
    std::vector<double> row;
    for (auto& r : runners) row.push_back(r->alltoall_us(bytes));
    t.add_row(harness::size_label(bytes), row);
  }
  emit(t);

  // The collective-striping benefit depends on how many ranks share the
  // node's HCA: with one rank per node a pairwise step drives one QP (one
  // engine) unless EPC stripes it; with four ranks per node the baseline's
  // four concurrent steps already cover the engines, and the shared 12x
  // link becomes the limit for every policy.  The paper's fig. 8 shows a
  // larger 2x4 margin than this idealized dynamic-scheduler model does —
  // see EXPERIMENTS.md for the discussion.
  harness::Table trend("orig vs EPC-4QP Alltoall across node density", "layout");
  trend.add_column("orig@1M us");
  trend.add_column("EPC@1M us");
  trend.add_column("orig/EPC");
  for (int ppn : {1, 2, 4}) {
    harness::Runner ro(mvx::ClusterSpec{2, ppn}, bench::apply_wiring_env(mvx::Config::original()), bench_params());
    harness::Runner re(mvx::ClusterSpec{2, ppn}, bench::apply_wiring_env(mvx::Config::enhanced(4, mvx::Policy::EPC)),
                       bench_params());
    const double o = ro.alltoall_us(1 << 20), e = re.alltoall_us(1 << 20);
    trend.add_row("2x" + std::to_string(ppn), {o, e, o / e});
  }
  emit(trend);

  const std::size_t last = t.row_count() - 1;
  harness::print_check("RR / EPC alltoall @1M 2x4 (EPC ahead of RR, >1.1)",
                       t.value(last, 1) / t.value(last, 3), 1.1, 3.0);
  harness::print_check("striping == EPC for collectives @1M (ratio ~1)",
                       t.value(last, 2) / t.value(last, 3), 0.97, 1.03);
  harness::print_check("orig / EPC alltoall @1M 2x4 (EPC no worse)",
                       t.value(last, 0) / t.value(last, 3), 1.0, 3.0);
  harness::print_check("orig / EPC alltoall @1M 2x1 (engine effect, >1.3)",
                       trend.value(0, 2), 1.3, 3.0);
  return 0;
}
