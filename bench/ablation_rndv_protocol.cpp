// Ablation: rendezvous protocol diversity and the adaptive scheduler.
//
// Part 1 sweeps protocol x message size on the 4-rail pair (crossbar and
// routed fat-tree): WriteRtsCts pays four control steps, ReadRts three with
// the pull issued by the receiver, WriteImm three with the FIN folded into
// the data.  Part 2 races the adaptive epsilon-greedy policy against every
// static protocol on three workloads:
//
//   uniform — one size, one peer: the bandit should converge to (and not
//             meaningfully trail) the best static protocol;
//   skewed  — a bimodal small/large mix where no single static choice wins
//             both size classes, so per-(peer, size-class) adaptation pays;
//   faulty  — the same mix with a rail flap and a completion-error rate: the
//             live-mask and observed-throughput rewards steer arms around
//             the degraded rails.
//
// Reported: MB/s of virtual time per cell, plus the adaptive-vs-best-static
// ratio per workload (the EXPERIMENTS.md ablation table).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

namespace {

using Proto = mvx::Config::RndvConfig::Protocol;



mvx::Config rails_config(bool fat_tree) {
  mvx::Config cfg = mvx::Config::enhanced(2, mvx::Policy::EPC);
  cfg.hcas_per_node = 2;  // 2 HCAs x 1 port x 2 QPs = 4 rails per peer
  if (fat_tree) cfg.topo.shape = ib::TopoShape::FatTree;
  return cfg;
}

/// Streams `sizes` (cycled, `iters` messages total) rank 0 -> rank 1 through
/// a non-blocking window; returns MB/s (decimal) of virtual time.
double stream_mbs(mvx::Config cfg, const std::vector<std::size_t>& sizes, int iters,
                  int window = 8) {
  mvx::World w(mvx::ClusterSpec{2, 1}, cfg);
  const sim::Time t0 = w.simulator().now();
  double total_bytes = 0;
  for (std::size_t n : sizes) total_bytes += static_cast<double>(n);
  total_bytes *= static_cast<double>(iters) / static_cast<double>(sizes.size());
  w.run([&](mvx::Communicator& c) {
    std::size_t maxb = 0;
    for (std::size_t n : sizes) maxb = std::max(maxb, n);
    std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(window),
                                             std::vector<std::byte>(maxb));
    std::vector<mvx::Request> reqs;
    for (int i = 0; i < iters; ++i) {
      const std::size_t n = sizes[static_cast<std::size_t>(i) % sizes.size()];
      std::byte* buf = bufs[reqs.size()].data();
      if (c.rank() == 0) {
        reqs.push_back(c.isend(buf, n, mvx::BYTE, 1, i));
      } else {
        reqs.push_back(c.irecv(buf, maxb, mvx::BYTE, 0, i));
      }
      if (static_cast<int>(reqs.size()) == window) {
        c.waitall(reqs);
        reqs.clear();
      }
    }
    c.waitall(reqs);
  });
  return total_bytes / sim::to_s(w.end_time() - t0) / 1e6;
}

mvx::Config with_proto(mvx::Config cfg, Proto p) {
  cfg.rndv.protocol = p;
  return cfg;
}

mvx::Config with_adaptive(mvx::Config cfg) {
  cfg.rndv.adaptive = true;
  cfg.rndv.epsilon = 0.02;
  cfg.rndv.seed = 0xab1a7e;
  return cfg;
}

/// The registration-pressure regime for the adaptive race: per-page pin
/// costs, a small pin-down cache (the streamed buffers never all fit, so
/// every rendezvous re-registers) and pipelined pacing.  This is where the
/// protocols genuinely trade places by size class: ReadRts wins small
/// messages on its shorter control path, while the pipelined write protocols
/// win large ones by overlapping chunk registration with the transfer —
/// ReadRts must pin the whole sender buffer before the RTS can leave.
mvx::Config with_pressure(mvx::Config cfg) {
  cfg.rndv_pipeline = true;
  cfg.rndv_pipeline_chunk = 64 * 1024;
  cfg.reg_page_cpu = sim::nanoseconds(150);
  cfg.reg_cache_capacity = 128 * 1024;
  return cfg;
}

mvx::Config with_faults(mvx::Config cfg) {
  cfg.fault.enabled = true;
  cfg.fault.seed = 0xfa17ab;
  cfg.fault.msg_error_rate = 0.01;
  // One HCA of the sending node drops out for most of the run: half the
  // rails vanish, then return.
  mvx::Config::FaultConfig::LinkFlap f;
  f.node = 0;
  f.hca = 1;
  f.port = 0;
  f.down_at = sim::microseconds(150.0);
  f.up_at = sim::microseconds(2500.0);
  cfg.fault.link_flaps.push_back(f);
  return cfg;
}

struct Workload {
  const char* name;
  std::vector<std::size_t> sizes;
  int iters;
  bool faulty;
};

}  // namespace

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Ablation — rendezvous protocol diversity (4-rail pair)\n");

  const std::vector<std::pair<const char*, Proto>> kProtos = {
      {"WriteRtsCts", Proto::WriteRtsCts},
      {"ReadRts", Proto::ReadRts},
      {"WriteImm", Proto::WriteImm},
  };
  const std::vector<std::size_t> kSizes = {32 * 1024, 128 * 1024, 512 * 1024, 1024 * 1024};

  // ---- part 1: protocol x size ------------------------------------------
  for (const bool fat_tree : {false, true}) {
    harness::Table t(std::string("rendezvous protocol x size, MB/s — ") +
                         (fat_tree ? "fat-tree" : "crossbar"),
                     "bytes");
    for (const auto& [name, p] : kProtos) t.add_column(name);
    for (std::size_t n : kSizes) {
      std::vector<double> row;
      for (const auto& [name, p] : kProtos) {
        row.push_back(stream_mbs(with_proto(rails_config(fat_tree), p), {n}, 64));
      }
      t.add_row(std::to_string(n), row);
    }
    emit(t);
  }

  // ---- part 2: adaptive vs best static ----------------------------------
  std::vector<std::size_t> bimodal;
  for (int i = 0; i < 8; ++i) bimodal.push_back(24 * 1024);
  bimodal.push_back(768 * 1024);
  const std::vector<Workload> kWorkloads = {
      {"uniform-256K", {256 * 1024}, 384, false},
      {"skewed-bimodal", bimodal, 2700, false},
      {"faulty-bimodal", bimodal, 2700, true},
  };

  harness::Table t2("adaptive vs static, MB/s", "workload");
  for (const auto& [name, p] : kProtos) t2.add_column(name);
  t2.add_column("adaptive");
  t2.add_column("adaptive/best-static");

  double uniform_ratio = 0, skewed_ratio = 0, faulty_ratio = 0;
  for (const Workload& wl : kWorkloads) {
    std::vector<double> row;
    double best_static = 0;
    for (const auto& [name, p] : kProtos) {
      mvx::Config cfg = with_pressure(with_proto(rails_config(false), p));
      if (wl.faulty) cfg = with_faults(cfg);
      const double mbs = stream_mbs(cfg, wl.sizes, wl.iters, /*window=*/2);
      best_static = std::max(best_static, mbs);
      row.push_back(mbs);
    }
    mvx::Config cfg = with_pressure(with_adaptive(rails_config(false)));
    if (wl.faulty) cfg = with_faults(cfg);
    const double adaptive = stream_mbs(cfg, wl.sizes, wl.iters, /*window=*/2);
    const double ratio = adaptive / best_static;
    row.push_back(adaptive);
    row.push_back(ratio);
    t2.add_row(wl.name, row);
    if (std::string(wl.name) == "uniform-256K") uniform_ratio = ratio;
    if (std::string(wl.name) == "skewed-bimodal") skewed_ratio = ratio;
    if (std::string(wl.name) == "faulty-bimodal") faulty_ratio = ratio;
  }
  emit(t2);

  // Headline: online selection never meaningfully trails the best static
  // protocol on a uniform stream, and wins once the workload is skewed or
  // the rails degrade (no static protocol-and-width fits every size class).
  harness::print_check("uniform: adaptive / best-static throughput", uniform_ratio, 0.95, 1e9);
  harness::print_check("skewed: adaptive / best-static throughput", skewed_ratio, 1.0, 1e9);
  harness::print_check("faulty: adaptive / best-static throughput", faulty_ratio, 1.0, 1e9);
  return 0;
}
