// Ablation: send/recv DMA engines per port.  The paper's whole premise is
// that the IBM 12x HCA exposes several engines per port; this sweep varies
// the (unpublished) engine count and shows the 4-QP EPC bandwidth tracking
// min(engines x engine-rate, link, bus).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Ablation — DMA engines per port (EPC, 4 QPs/port)\n");
  harness::Table t("engines/port sweep", "engines");
  t.add_column("uni-BW@1M MB/s");
  t.add_column("orig-BW@1M MB/s");
  for (int e : {1, 2, 3, 4, 6, 8}) {
    mvx::Config cfg = mvx::Config::enhanced(4, mvx::Policy::EPC);
    cfg.hca.send_engines_per_port = e;
    cfg.hca.recv_engines_per_port = e;
    harness::Runner r(mvx::ClusterSpec{2, 1}, cfg, bench_params());
    mvx::Config ocfg = mvx::Config::original();
    ocfg.hca.send_engines_per_port = e;
    ocfg.hca.recv_engines_per_port = e;
    harness::Runner ro(mvx::ClusterSpec{2, 1}, ocfg, bench_params());
    t.add_row(std::to_string(e), {r.uni_bw_mbs(1 << 20), ro.uni_bw_mbs(1 << 20)});
  }
  emit(t);

  harness::print_check("1-engine: 4QP EPC == orig (no parallelism to exploit)",
                       t.value(0, 0) / t.value(0, 1), 0.9, 1.1);
  return 0;
}
