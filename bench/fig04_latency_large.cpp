// Figure 4: MPI latency for large messages (16 KiB – 1 MiB), ping-pong,
// comparing scheduling policies and QP counts.
// Paper claims: with 4 QPs/port, EPC and even striping perform comparably
// and ~33% better than the original; binding and round robin cannot split a
// single blocking message and gain nothing.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Fig 4 — large-message ping-pong latency (us), 2 nodes x 1 process\n");
  const std::vector<Column> cols = {
      original(),
      epc(2),
      epc(4),
      policy_col(4, mvx::Policy::Binding),
      policy_col(4, mvx::Policy::EvenStriping),
      policy_col(4, mvx::Policy::RoundRobin),
  };
  const auto sizes = harness::pow2_sizes(16 * 1024, 1 << 20);

  harness::Table t("MPI latency, large messages (us)", "bytes");
  std::vector<std::unique_ptr<harness::Runner>> runners;
  for (const Column& c : cols) {
    t.add_column(c.label);
    runners.push_back(std::make_unique<harness::Runner>(mvx::ClusterSpec{2, 1}, c.cfg,
                                                        bench_params()));
  }
  for (auto bytes : sizes) {
    std::vector<double> row;
    for (auto& r : runners) row.push_back(r->latency_us(bytes));
    t.add_row(harness::size_label(bytes), row);
  }
  emit(t);

  const std::size_t last = t.row_count() - 1;  // 1 MiB row
  const double orig = t.value(last, 0), epc4 = t.value(last, 2);
  const double stripe = t.value(last, 4), rr = t.value(last, 5);
  harness::print_check("EPC-4QP improvement over orig @1M, % (~33)", (1 - epc4 / orig) * 100, 25,
                       45);
  harness::print_check("EPC-4QP / striping-4QP ratio @1M (~1.0)", epc4 / stripe, 0.95, 1.05);
  harness::print_check("round-robin / orig ratio @1M (~1.0)", rr / orig, 0.90, 1.10);
  return 0;
}
