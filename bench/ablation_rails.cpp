// Ablation: rail topology — multiple QPs vs multiple ports vs multiple HCAs
// (the combinations the paper defers to future work, §4.1/§6).
// Physical expectation: ports on the same HCA share one GX+ bus, so the
// second port adds nothing for uni-directional traffic; a second HCA brings
// its own bus and nearly doubles it.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Ablation — rail topology (EPC): QPs vs ports vs HCAs\n");
  struct Topo {
    const char* label;
    int hcas, ports, qps;
  };
  const Topo topos[] = {
      {"1H-1P-1Q (orig-ish)", 1, 1, 1},
      {"1H-1P-4Q (paper)", 1, 1, 4},
      {"1H-2P-2Q", 1, 2, 2},
      {"1H-2P-4Q", 1, 2, 4},
      {"2H-1P-2Q", 2, 1, 2},
      {"2H-2P-2Q", 2, 2, 2},
  };

  harness::Table t("rail topology sweep (EPC)", "topology");
  t.add_column("rails");
  t.add_column("uni-BW@1M MB/s");
  t.add_column("bi-BW@1M MB/s");
  t.add_column("lat@1M us");
  for (const Topo& topo : topos) {
    mvx::Config cfg = mvx::Config::enhanced(topo.qps, mvx::Policy::EPC);
    cfg.hcas_per_node = topo.hcas;
    cfg.ports_per_hca = topo.ports;
    harness::Runner r(mvx::ClusterSpec{2, 1}, cfg, bench_params());
    t.add_row(topo.label, {static_cast<double>(cfg.rails()), r.uni_bw_mbs(1 << 20),
                           r.bi_bw_mbs(1 << 20), r.latency_us(1 << 20)});
  }
  emit(t);

  harness::print_check("2 ports / 1 port uni-BW ratio (bus-bound, ~1)",
                       t.value(3, 1) / t.value(1, 1), 0.95, 1.1);
  harness::print_check("2 HCAs / 1 HCA uni-BW ratio (~2)", t.value(4, 1) / t.value(1, 1), 1.6,
                       2.1);
  return 0;
}
