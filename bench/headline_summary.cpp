// Headline summary: every quantitative claim from the paper's abstract and
// conclusions, measured against this reproduction in one run.
//
//   * 41% ping-pong latency improvement (EPC vs original, large messages)
//   * 63–65% uni-/bi-directional bandwidth improvement
//   * peak 2745 MB/s uni-directional, 5362 MB/s bi-directional
//   * IS 7–13% and FT 5–7% execution-time improvement
#include <cstdio>

#include "bench_util.hpp"
#include "nas/ft.hpp"
#include "nas/is.hpp"

using namespace ib12x;
using namespace ib12x::bench;

namespace {

double nas_gain(nas::NasClass cls, bool is_kernel, mvx::ClusterSpec spec) {
  double secs[2];
  const mvx::Config cfgs[2] = {bench::apply_wiring_env(mvx::Config::original()), bench::apply_wiring_env(mvx::Config::enhanced(4, mvx::Policy::EPC))};
  for (int i = 0; i < 2; ++i) {
    mvx::World w(spec, cfgs[i]);
    double s = 0;
    w.run([&](mvx::Communicator& c) {
      double r = is_kernel ? nas::run_is(c, cls).seconds : nas::run_ft(c, cls).seconds;
      if (c.rank() == 0) s = r;
    });
    secs[i] = s;
  }
  return (1.0 - secs[1] / secs[0]) * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Headline summary — paper claims vs this reproduction\n");
  harness::BenchParams bp = bench_params();

  harness::Runner orig(mvx::ClusterSpec{2, 1}, bench::apply_wiring_env(mvx::Config::original()), bp);
  harness::Runner epc4(mvx::ClusterSpec{2, 1}, bench::apply_wiring_env(mvx::Config::enhanced(4, mvx::Policy::EPC)), bp);

  // Latency improvement: the abstract's 41% refers to the large-message
  // ping-pong regime where striping splits the blocking message.
  double best_gain = 0;
  for (std::int64_t bytes : {64 * 1024, 256 * 1024, 1 << 20}) {
    const double g = (1.0 - epc4.latency_us(bytes) / orig.latency_us(bytes)) * 100.0;
    if (g > best_gain) best_gain = g;
  }
  harness::print_check("ping-pong latency improvement % (paper 41)", best_gain, 30, 50);

  // Machine-readable record of every headline number (--json / IB12X_JSON →
  // BENCH_headline.json in CI), so the bench trajectory tracks these claims.
  harness::Table headline("headline claims vs reproduction", "claim");
  headline.add_column("measured");
  headline.add_column("paper");
  headline.add_row("latency improvement %", {best_gain, 41});

  // Bandwidth peaks are measured on fresh clusters (the protocol of
  // fig. 6/7): the bi-directional bus-contention model carries a few percent
  // of mode noise across back-to-back runs in one world.
  const double uni_o = harness::Runner(mvx::ClusterSpec{2, 1}, bench::apply_wiring_env(mvx::Config::original()), bp)
                           .uni_bw_mbs(1 << 20);
  const double uni_e =
      harness::Runner(mvx::ClusterSpec{2, 1}, bench::apply_wiring_env(mvx::Config::enhanced(4, mvx::Policy::EPC)), bp)
          .uni_bw_mbs(1 << 20);
  const double bi_o = harness::Runner(mvx::ClusterSpec{2, 1}, bench::apply_wiring_env(mvx::Config::original()), bp)
                          .bi_bw_mbs(1 << 20);
  const double bi_e =
      harness::Runner(mvx::ClusterSpec{2, 1}, bench::apply_wiring_env(mvx::Config::enhanced(4, mvx::Policy::EPC)), bp)
          .bi_bw_mbs(1 << 20);
  harness::print_check("uni-BW peak MB/s (paper 2745)", uni_e, 2500, 3000);
  harness::print_check("bi-BW  peak MB/s (paper 5362)", bi_e, 4900, 5800);
  harness::print_check("uni-BW orig MB/s (paper 1661)", uni_o, 1450, 1850);
  harness::print_check("uni-BW improvement % (paper 65)", (uni_e / uni_o - 1) * 100, 45, 85);
  harness::print_check("bi-BW  improvement % (paper 63)", (bi_e / bi_o - 1) * 100, 45, 85);

  const double is_gain = nas_gain(nas::NasClass::A, true, {2, 1});
  const double ft_gain = nas_gain(nas::NasClass::A, false, {2, 1});
  harness::print_check("IS-A gain @2 procs % (paper 13)", is_gain, 7, 19);
  harness::print_check("FT-A gain @2 procs % (paper 5-7)", ft_gain, 3, 11);

  headline.add_row("uni-BW peak MB/s", {uni_e, 2745});
  headline.add_row("bi-BW peak MB/s", {bi_e, 5362});
  headline.add_row("uni-BW orig MB/s", {uni_o, 1661});
  headline.add_row("uni-BW improvement %", {(uni_e / uni_o - 1) * 100, 65});
  headline.add_row("bi-BW improvement %", {(bi_e / bi_o - 1) * 100, 63});
  headline.add_row("IS-A gain %", {is_gain, 13});
  headline.add_row("FT-A gain %", {ft_gain, 6});
  emit_json(headline);

  std::printf("\n");
  harness::telemetry_table(epc4.world(), "EPC 4-rail per-layer telemetry (micro-bench runs)")
      .print();
  return 0;
}
