// Ablation: pipelined zero-copy rendezvous vs the one-shot protocol, under a
// cold pin-down cache (every message in the window sends from a buffer the
// cache has never seen, so both sides pay full chunked registration).
//
// The sweep reproduces fig. 6's uni-directional window semantics on 4 rails
// (2 HCAs × 2 ports) with the MVAPICH-era ~150 ns/page pin cost enabled in
// BOTH columns — the comparison isolates protocol structure (chunked CTS +
// overlapped registration + doorbell-batched posting), not the cost model.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

namespace {

mvx::Config rails4(bool pipeline, std::int64_t chunk) {
  mvx::Config cfg = mvx::Config::enhanced(1, mvx::Policy::EPC);
  cfg.hcas_per_node = 2;
  cfg.ports_per_hca = 2;  // 2 HCAs × 2 ports × 1 QP = 4 rails, 2 GX+ buses
  cfg.reg_page_cpu = sim::nanoseconds(150);
  cfg.rndv_pipeline = pipeline;
  cfg.rndv_pipeline_chunk = chunk;
  return cfg;
}

/// Cold-cache windowed uni-BW in MB/s (decimal): `window` concurrent
/// messages, every one from/to a distinct never-registered buffer.
double cold_uni_bw_mbs(const mvx::Config& cfg, std::int64_t bytes, int window) {
  mvx::World w(mvx::ClusterSpec{2, 1}, cfg);
  sim::Time end = 0;
  w.run([&](mvx::Communicator& c) {
    std::vector<std::vector<std::byte>> bufs;
    bufs.reserve(static_cast<std::size_t>(window));
    for (int i = 0; i < window; ++i) {
      bufs.emplace_back(static_cast<std::size_t>(bytes));
    }
    std::vector<mvx::Request> reqs;
    reqs.reserve(static_cast<std::size_t>(window));
    if (c.rank() == 0) {
      for (int i = 0; i < window; ++i) {
        reqs.push_back(c.isend(bufs[static_cast<std::size_t>(i)].data(), bytes, mvx::BYTE, 1, i));
      }
    } else {
      for (int i = 0; i < window; ++i) {
        reqs.push_back(c.irecv(bufs[static_cast<std::size_t>(i)].data(), bytes, mvx::BYTE, 0, i));
      }
    }
    c.waitall(reqs);
    end = c.now();
  });
  return static_cast<double>(bytes) * window / static_cast<double>(end) * 1e6;  // MB/s
}

}  // namespace

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  // Window of 8: deep enough to be a bandwidth (not latency) measurement,
  // shallow enough that one message's serialized registration is not fully
  // hidden behind its neighbours' wire time — the regime §3.2 argues about.
  const int window = env_int("IB12X_RNDV_WINDOW", 8);

  std::printf("Ablation — pipelined zero-copy rendezvous (cold pin-down cache, 4 rails)\n");

  harness::Table t("cold-cache uni-BW (EPC, 4 rails, 150ns/page pin cost, MB/s)", "size");
  t.add_column("one-shot MB/s");
  t.add_column("pipelined-64K MB/s");
  t.add_column("speedup");
  double speedup_1m = 0;
  for (std::int64_t bytes : {256L * 1024, 1024L * 1024, 4096L * 1024}) {
    const double base = cold_uni_bw_mbs(rails4(false, 64 * 1024), bytes, window);
    const double pipe = cold_uni_bw_mbs(rails4(true, 64 * 1024), bytes, window);
    if (bytes == 1024L * 1024) speedup_1m = pipe / base;
    t.add_row(harness::size_label(bytes), {base, pipe, pipe / base});
  }
  emit(t);

  harness::Table s("chunk-size sweep @1MiB (pipelined, cold cache, MB/s)", "chunk");
  s.add_column("uni-BW MB/s");
  for (std::int64_t chunk : {16L * 1024, 32L * 1024, 64L * 1024, 128L * 1024, 256L * 1024}) {
    s.add_row(harness::size_label(chunk),
              {cold_uni_bw_mbs(rails4(true, chunk), 1 << 20, window)});
  }
  emit(s);

  std::printf("\npipelined/one-shot @1MiB: %.3fx %s\n", speedup_1m,
              speedup_1m >= 1.15 ? "(>= 1.15x target met)" : "(BELOW 1.15x target)");
  return speedup_1m >= 1.15 ? 0 : 1;
}
