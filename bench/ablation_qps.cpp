// Ablation: QP-count scaling.  The paper argues multiple QPs per port are
// required to exploit the per-port DMA-engine pool; this sweep shows where
// the returns flatten (engine count, then 12x link, then GX+ bus).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Ablation — QPs/port scaling, EPC policy, 1 port\n");
  const int qp_counts[] = {1, 2, 3, 4, 6, 8};

  harness::Table t("bandwidth & latency vs QPs/port (EPC)", "QPs");
  t.add_column("uni-BW@1M MB/s");
  t.add_column("bi-BW@1M MB/s");
  t.add_column("lat@1M us");
  t.add_column("lat@8B us");
  for (int q : qp_counts) {
    harness::Runner r(mvx::ClusterSpec{2, 1}, mvx::Config::enhanced(q, mvx::Policy::EPC),
                      bench_params());
    t.add_row(std::to_string(q), {r.uni_bw_mbs(1 << 20), r.bi_bw_mbs(1 << 20),
                                  r.latency_us(1 << 20), r.latency_us(8)});
  }
  emit(t);

  harness::print_check("uni-BW 4QP / 1QP (paper-driving ratio)", t.value(3, 0) / t.value(0, 0),
                       1.4, 2.0);
  harness::print_check("uni-BW 8QP / 4QP (flat beyond engine count)",
                       t.value(5, 0) / t.value(3, 0), 0.9, 1.1);
  return 0;
}
