// Figure 12: NAS Fourier Transform, class B, 2/4/8 processes.
// Paper: ~5–7% execution-time improvement with 4 QPs/port EPC.
#include "nas_common.hpp"
#include "nas/ft.hpp"

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  using namespace ib12x;
  bench::run_nas_figure("Fig 12 — FT class B", nas::NasClass::B,
                        [](mvx::Communicator& c, nas::NasClass cls) {
                          nas::FtResult r = nas::run_ft(c, cls);
                          if (!r.verified) throw std::runtime_error("FT verification failed");
                          return r.seconds;
                        },
                        /*paper_gain band 5-7%:*/ 3, 11);
  return 0;
}
