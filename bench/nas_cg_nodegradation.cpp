// NAS CG check: the paper's §4.4 closing claim — "we have not seen
// performance degradation using other NAS Parallel Benchmarks".  CG's
// traffic profile (tiny allreduce dot-products, ~100 KB allgathers) gains
// little from multi-rail scheduling, and EPC must never make it slower.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_util.hpp"
#include "nas/cg.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("NAS CG (class A) — no-degradation check, orig vs 4QP EPC\n");
  harness::Table t("CG class A execution time (ms)", "procs");
  t.add_column("orig-1QP");
  t.add_column("EPC-4QP");
  t.add_column("delta %");

  double worst = 0;
  for (const mvx::ClusterSpec spec : {mvx::ClusterSpec{2, 1}, mvx::ClusterSpec{2, 2},
                                      mvx::ClusterSpec{2, 4}}) {
    double secs[2];
    const mvx::Config cfgs[2] = {apply_wiring_env(mvx::Config::original()),
                                 apply_wiring_env(mvx::Config::enhanced(4, mvx::Policy::EPC))};
    for (int i = 0; i < 2; ++i) {
      mvx::World w(spec, cfgs[i]);
      double s = 0;
      w.run([&](mvx::Communicator& c) {
        nas::CgResult r = nas::run_cg(c, nas::NasClass::A);
        if (!r.verified) throw std::runtime_error("CG verification failed");
        if (c.rank() == 0) s = r.seconds;
      });
      secs[i] = s;
    }
    const double delta = (secs[1] / secs[0] - 1.0) * 100.0;
    worst = std::max(worst, delta);
    t.add_row(std::to_string(spec.total_ranks()), {secs[0] * 1e3, secs[1] * 1e3, delta});
  }
  emit(t);
  harness::print_check("worst-case EPC slowdown % (paper: none observed)", worst, -100, 1.0);
  return 0;
}
