// Ablation: the 16 KiB rendezvous/striping threshold (paper §3.3).
// Sweeps the threshold and reports medium-message bandwidth and latency —
// showing why the paper's 16 KiB choice is a sound middle ground between
// eager copy cost (threshold too high) and handshake overhead (too low).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Ablation — rendezvous/striping threshold sweep (EPC, 4 QPs/port)\n");
  const std::int64_t thresholds[] = {4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024};

  harness::Table t("threshold sweep (EPC-4QP)", "threshold");
  t.add_column("uni-BW@16K MB/s");
  t.add_column("uni-BW@64K MB/s");
  t.add_column("lat@16K us");
  t.add_column("lat@64K us");
  for (std::int64_t th : thresholds) {
    mvx::Config cfg = mvx::Config::enhanced(4, mvx::Policy::EPC);
    cfg.rndv_threshold = th;
    cfg.stripe_threshold = th;
    harness::Runner r(mvx::ClusterSpec{2, 1}, cfg, bench_params());
    t.add_row(harness::size_label(th), {r.uni_bw_mbs(16 * 1024), r.uni_bw_mbs(64 * 1024),
                                        r.latency_us(16 * 1024), r.latency_us(64 * 1024)});
  }
  emit(t);
  return 0;
}
