// Figure 9: NAS Integer Sort, class A, 2/4/8 processes.
// Paper: EPC with 4 QPs/port improves execution time by ~13% at 2 processes,
// shrinking with more processes per node (shared-memory traffic grows).
#include "nas_common.hpp"
#include "nas/is.hpp"

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  using namespace ib12x;
  bench::run_nas_figure("Fig 9 — IS class A", nas::NasClass::A,
                        [](mvx::Communicator& c, nas::NasClass cls) {
                          nas::IsResult r = nas::run_is(c, cls);
                          if (!r.verified) throw std::runtime_error("IS verification failed");
                          return r.seconds;
                        },
                        /*paper_gain band ~13%:*/ 7, 19);
  return 0;
}
