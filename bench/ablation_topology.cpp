// Ablation: switched topology under congestion — what an explicit fabric
// buys over the monolithic crossbar once the job outgrows a single switch.
// For 64 and 256 ranks the same two traffic patterns run on a contended
// crossbar, fat-tree, and dragonfly (minimal routing):
//
//   uniform  — an alltoall exchange, load spread evenly over the bisection
//   hot-spot — a many-to-few skew: a quarter of the ranks are hot receivers,
//              each the target of three concurrent bulk senders
//
// The fan-in per victim is deliberately small: each victim's own downlink
// could absorb its three flows, so the pattern is *fabric*-limited, not
// endpoint-limited (a deep single-victim incast would be endpoint-bound on
// every topology and show nothing).  On the crossbar all flows share one
// arbiter capped at nonblocking_radix ports' worth of bandwidth; the
// fat-tree and dragonfly spread the same flows over many switch backplanes.
//
// Reported per cell: virtual completion time, switch-queue high-water mark,
// and counted stalls.  The headline check: at 256 ranks the crossbar is
// materially slower under hot-spot traffic than either routed fabric, while
// at 64 ranks (radix near the non-blocking cap) it still holds.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

namespace {

constexpr int kHotStride = 4;                    ///< every 4th rank is a hot receiver
constexpr std::size_t kHotBytes = 128 * 1024;    ///< per-sender payload
constexpr std::size_t kUniformPerPeer = 2048;    ///< alltoall bytes per peer

mvx::Config topo_config(ib::TopoShape shape) {
  mvx::Config cfg = mvx::Config::enhanced(1, mvx::Policy::Binding);
  cfg.hca.ports = 1;  // one LID per rank: topology sized to the rank count
  cfg.lazy_connect = false;
  cfg.topo.shape = shape;
  cfg.topo.contention = true;
  return cfg;
}

struct Cell {
  double end_us = 0;     ///< virtual completion time
  double hwm_kb = 0;     ///< fabric.switch.queue_hwm_bytes
  double stalls = 0;     ///< fabric.switch.stalls
};

double gauge_value(const mvx::World& w, const std::string& name) {
  for (const auto& s : w.telemetry().snapshot()) {
    if (s.name == name) return s.value;
  }
  return 0;
}

Cell measure(mvx::World& w) {
  Cell cell;
  cell.end_us = sim::to_s(w.end_time()) * 1e6;
  cell.hwm_kb = gauge_value(w, "fabric.switch.queue_hwm_bytes") / 1024.0;
  cell.stalls = gauge_value(w, "fabric.switch.stalls");
  return cell;
}

Cell run_uniform(int ranks, ib::TopoShape shape) {
  mvx::World w(mvx::ClusterSpec{ranks, 1}, topo_config(shape));
  w.run([](mvx::Communicator& c) {
    std::vector<std::byte> sbuf(kUniformPerPeer * static_cast<std::size_t>(c.size()),
                                std::byte{0x5A});
    std::vector<std::byte> rbuf(sbuf.size());
    c.alltoall(sbuf.data(), rbuf.data(), kUniformPerPeer, mvx::BYTE);
  });
  return measure(w);
}

Cell run_hotspot(int ranks, ib::TopoShape shape) {
  mvx::World w(mvx::ClusterSpec{ranks, 1}, topo_config(shape));
  w.run([](mvx::Communicator& c) {
    // Victims are the ranks with r % kHotStride == 0; sender r targets the
    // victim (r / kHotStride + r % kHotStride) blocks away, so each victim
    // collects exactly kHotStride - 1 concurrent flows from distinct remote
    // blocks.  All receives are posted up front so the exchange is limited
    // by the fabric, not by matching.
    const int hot = c.size() / kHotStride;
    std::vector<mvx::Request> reqs;
    std::vector<std::vector<std::byte>> sinks;
    std::vector<std::byte> payload;  // must outlive waitall
    if (c.rank() % kHotStride == 0) {
      const int h = c.rank() / kHotStride;
      for (int m = 1; m < kHotStride; ++m) {
        const int src = kHotStride * ((h - m + hot) % hot) + m;
        auto& sink = sinks.emplace_back(kHotBytes);
        reqs.push_back(c.irecv(sink.data(), kHotBytes, mvx::BYTE, src, 3));
      }
    } else {
      const int dst = kHotStride * ((c.rank() / kHotStride + c.rank() % kHotStride) % hot);
      payload.assign(kHotBytes, std::byte{0xC3});
      reqs.push_back(c.isend(payload.data(), kHotBytes, mvx::BYTE, dst, 3));
    }
    c.waitall(reqs);
  });
  return measure(w);
}

}  // namespace

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Ablation — switched topology under congestion (contention on)\n");
  std::printf("  uniform: alltoall %zu B/peer; hot-spot: 1-in-%d ranks hot, %d senders x %zu KB "
              "each\n",
              kUniformPerPeer, kHotStride, kHotStride - 1, kHotBytes / 1024);

  const struct {
    ib::TopoShape shape;
    const char* name;
  } kShapes[] = {{ib::TopoShape::Crossbar, "crossbar"},
                 {ib::TopoShape::FatTree, "fat-tree"},
                 {ib::TopoShape::Dragonfly, "dragonfly"}};

  double xbar_hot256 = 0, ft_hot256 = 0, df_hot256 = 0;
  double xbar_hwm256 = 0, ft_hwm256 = 0;
  for (int ranks : {64, 256}) {
    harness::Table t("topology ablation @ " + std::to_string(ranks) + " ranks", "config");
    t.add_column("uniform us");
    t.add_column("hot-spot us");
    t.add_column("hs queue KB");
    t.add_column("hs stalls");
    for (const auto& s : kShapes) {
      const Cell uni = run_uniform(ranks, s.shape);
      const Cell hot = run_hotspot(ranks, s.shape);
      t.add_row(s.name, {uni.end_us, hot.end_us, hot.hwm_kb, hot.stalls});
      if (ranks == 256) {
        if (s.shape == ib::TopoShape::Crossbar) {
          xbar_hot256 = hot.end_us;
          xbar_hwm256 = hot.hwm_kb;
        }
        if (s.shape == ib::TopoShape::FatTree) {
          ft_hot256 = hot.end_us;
          ft_hwm256 = hot.hwm_kb;
        }
        if (s.shape == ib::TopoShape::Dragonfly) df_hot256 = hot.end_us;
      }
    }
    emit(t);
  }

  // The headline claims: the shared crossbar arbiter is the hot-spot
  // bottleneck at scale; the routed fabrics spread the same flows out, and
  // the crossbar's single output queue piles correspondingly deeper.
  harness::print_check("crossbar / fat-tree hot-spot time @ 256 ranks",
                       xbar_hot256 / ft_hot256, 1.2, 1e9);
  harness::print_check("crossbar / dragonfly hot-spot time @ 256 ranks",
                       xbar_hot256 / df_hot256, 1.15, 1e9);
  harness::print_check("crossbar / fat-tree hot-spot queue depth @ 256 ranks",
                       xbar_hwm256 / ft_hwm256, 2.0, 1e9);
  return 0;
}
