// Ablation: collective algorithm selection (MVAPICH-era tuning).  Shows the
// crossovers the Auto policy is built on: Bruck vs pairwise alltoall by
// block size, and recursive-doubling vs Rabenseifner allreduce by vector
// length — all on the 2x4 EPC configuration.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

namespace {

double a2a_us(mvx::coll::AlltoallAlgo algo, std::int64_t per_bytes) {
  mvx::Config cfg = mvx::Config::enhanced(4, mvx::Policy::EPC);
  cfg.coll.alltoall_algo = algo;
  harness::Runner r(mvx::ClusterSpec{2, 4}, cfg, bench_params());
  return r.alltoall_us(per_bytes);
}

double allreduce_us(mvx::coll::AllreduceAlgo algo, std::size_t doubles) {
  mvx::Config cfg = mvx::Config::enhanced(4, mvx::Policy::EPC);
  cfg.coll.allreduce_algo = algo;
  mvx::World w(mvx::ClusterSpec{2, 4}, cfg);
  double us = 0;
  w.run([&](mvx::Communicator& c) {
    std::vector<double> a(doubles, 1.0), b(doubles);
    c.allreduce(a.data(), b.data(), doubles, mvx::DOUBLE, mvx::Op::Sum);  // warm
    c.barrier();
    const sim::Time t0 = c.now();
    const int iters = 10;
    for (int i = 0; i < iters; ++i) c.allreduce(a.data(), b.data(), doubles, mvx::DOUBLE, mvx::Op::Sum);
    c.barrier();
    if (c.rank() == 0) us = sim::to_us(c.now() - t0) / iters;
  });
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Ablation — collective algorithm crossovers (2x4, EPC-4QP)\n");

  harness::Table a2a("Alltoall: pairwise vs Bruck (us/call)", "bytes/dest");
  a2a.add_column("pairwise");
  a2a.add_column("Bruck");
  a2a.add_column("auto");
  for (std::int64_t bytes : {64L, 512L, 4096L, 32768L, 262144L}) {
    a2a.add_row(harness::size_label(bytes),
                {a2a_us(mvx::coll::AlltoallAlgo::Pairwise, bytes),
                 a2a_us(mvx::coll::AlltoallAlgo::Bruck, bytes),
                 a2a_us(mvx::coll::AlltoallAlgo::Auto, bytes)});
  }
  emit(a2a);

  harness::Table ar("Allreduce: recursive doubling vs Rabenseifner (us/call)", "doubles");
  ar.add_column("recdbl");
  ar.add_column("rabenseifner");
  ar.add_column("auto");
  for (std::size_t n : {8ul, 256ul, 8192ul, 262144ul}) {
    ar.add_row(std::to_string(n),
               {allreduce_us(mvx::coll::AllreduceAlgo::RecursiveDoubling, n),
                allreduce_us(mvx::coll::AllreduceAlgo::Rabenseifner, n),
                allreduce_us(mvx::coll::AllreduceAlgo::Auto, n)});
  }
  emit(ar);

  harness::print_check("Bruck/pairwise @64B (Bruck wins, <1)", a2a.value(0, 1) / a2a.value(0, 0),
                       0.2, 1.0);
  harness::print_check("Bruck/pairwise @256K (pairwise wins, >1)",
                       a2a.value(4, 1) / a2a.value(4, 0), 1.0, 5.0);
  harness::print_check("rabenseifner/recdbl @256K doubles (<1)", ar.value(3, 1) / ar.value(3, 0),
                       0.2, 1.0);
  return 0;
}
