// Figure 3: MPI latency for small messages (1 B – 8 KiB), ping-pong.
// Paper claim: the enhanced design (EPC, multiple QPs/port) adds negligible
// overhead over the original single-QP MVAPICH for small messages, because
// below the striping threshold only one QP carries each blocking message.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Fig 3 — small-message ping-pong latency (us), 2 nodes x 1 process\n");
  const std::vector<Column> cols = {original(), epc(1), epc(2), epc(4)};
  const auto sizes = harness::pow2_sizes(1, 8 * 1024);

  harness::Table t("MPI latency, small messages (us)", "bytes");
  std::vector<std::unique_ptr<harness::Runner>> runners;
  for (const Column& c : cols) {
    t.add_column(c.label);
    runners.push_back(std::make_unique<harness::Runner>(mvx::ClusterSpec{2, 1}, c.cfg,
                                                        bench_params()));
  }
  for (auto bytes : sizes) {
    std::vector<double> row;
    for (auto& r : runners) row.push_back(r->latency_us(bytes));
    t.add_row(harness::size_label(bytes), row);
  }
  emit(t);

  // Paper-shape check: EPC-4QP within 5% of original at 8 bytes.
  const double orig8 = t.value(3, 0), epc8 = t.value(3, 3);
  harness::print_check("EPC-4QP / orig latency ratio @8B (~1.0)", epc8 / orig8, 0.95, 1.05);
  return 0;
}
