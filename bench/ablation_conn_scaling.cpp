// Ablation: connection scaling — what the lazy connection manager and the
// SRQ-pooled eager path buy as the job grows.  For each rank count the same
// nearest-neighbour ring exchange runs under (a) the legacy eager wiring
// (all-pairs QPs at startup, per-QP eager slots) and (b) lazy connect with
// the shared-receive-queue arena.  Reported per cell: host-side setup wall
// time, QPs actually created, and modelled pinned eager-buffer memory —
// the §2.1 memory wall this refactor attacks.  A message-rate sanity check
// at 64 ranks confirms the pooled path costs no throughput.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

namespace {

constexpr std::size_t kMsgBytes = 512;

/// Scaled-down knobs shared by both modes so the 256-rank all-pairs column
/// stays runnable on a laptop: the footprint *ratio* is what the ablation
/// measures, not absolute bytes.
mvx::Config scaled_config(bool lazy_srq) {
  mvx::Config cfg = mvx::Config::original();
  cfg.rndv_threshold = 2048;   // slot = header + 2 KiB
  cfg.eager_credits = 2;       // wired mode: slots per rail per peer
  cfg.send_bounce_bufs = 16;
  cfg.srq_pool_slots = 32;     // pooled mode: slots per HCA, total
  cfg.lazy_connect = lazy_srq;
  cfg.use_srq = lazy_srq;
  return cfg;
}

struct Cell {
  double setup_ms = 0;   ///< World construction wall time (host side)
  double qps = 0;        ///< conn.qps_created after the exchange
  double eager_mb = 0;   ///< eager.pool_bytes after the exchange (modelled pinned)
  double end_us = 0;     ///< virtual completion time of the ring exchange
};

Cell run_cell(int ranks, bool lazy_srq) {
  const mvx::Config cfg = scaled_config(lazy_srq);
  const auto t0 = std::chrono::steady_clock::now();
  mvx::World w(mvx::ClusterSpec{ranks, 1}, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  w.run([](mvx::Communicator& c) {
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() + c.size() - 1) % c.size();
    std::vector<std::byte> out(kMsgBytes, std::byte{0x12});
    std::vector<std::byte> in(kMsgBytes);
    c.sendrecv(out.data(), out.size(), mvx::BYTE, right, 0, in.data(), in.size(), mvx::BYTE,
               left, 0);
  });
  Cell cell;
  cell.setup_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  cell.qps = static_cast<double>(w.telemetry().counter_value("conn.qps_created"));
  cell.eager_mb = static_cast<double>(w.telemetry().counter_value("eager.pool_bytes")) / 1e6;
  cell.end_us = sim::to_s(w.end_time()) * 1e6;
  return cell;
}

/// Virtual-time message rate of a windowed many-to-many burst at `ranks`.
double message_rate(int ranks, bool lazy_srq) {
  constexpr int kMsgsPerRank = 64;
  mvx::World w(mvx::ClusterSpec{ranks, 1}, scaled_config(lazy_srq));
  w.run([&](mvx::Communicator& c) {
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() + c.size() - 1) % c.size();
    std::vector<std::byte> out(kMsgBytes, std::byte{0x34});
    std::vector<std::byte> in(kMsgBytes);
    for (int i = 0; i < kMsgsPerRank; ++i) {
      c.sendrecv(out.data(), out.size(), mvx::BYTE, right, i, in.data(), in.size(), mvx::BYTE,
                 left, i);
    }
  });
  const double secs = sim::to_s(w.end_time());
  return static_cast<double>(ranks) * kMsgsPerRank / secs;
}

}  // namespace

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Ablation — connection scaling: eager all-pairs wiring vs lazy connect + SRQ\n");
  std::printf("  ring exchange, %zu B messages; scaled-down slots (2 KiB, 2 credits, "
              "32-slot pool)\n", kMsgBytes);

  const int kRankCounts[] = {4, 16, 64, 256};
  harness::Table t("connection scaling", "config");
  t.add_column("setup ms");
  t.add_column("QPs");
  t.add_column("eager MB");
  t.add_column("ring us");
  Cell wired256, lazy256;
  for (int ranks : kRankCounts) {
    const Cell wired = run_cell(ranks, /*lazy_srq=*/false);
    const Cell lazy = run_cell(ranks, /*lazy_srq=*/true);
    char label[48];
    std::snprintf(label, sizeof(label), "%d ranks eager-wired", ranks);
    t.add_row(label, {wired.setup_ms, wired.qps, wired.eager_mb, wired.end_us});
    std::snprintf(label, sizeof(label), "%d ranks lazy+SRQ", ranks);
    t.add_row(label, {lazy.setup_ms, lazy.qps, lazy.eager_mb, lazy.end_us});
    if (ranks == 256) {
      wired256 = wired;
      lazy256 = lazy;
    }
  }
  emit(t);

  // Message-rate sanity: the pooled eager path must not tax throughput at a
  // size where both modes run comfortably.
  const double rate_wired = message_rate(64, /*lazy_srq=*/false);
  const double rate_lazy = message_rate(64, /*lazy_srq=*/true);
  harness::Table r("message rate @ 64 ranks", "config");
  r.add_column("msgs/s");
  r.add_row("eager-wired", {rate_wired});
  r.add_row("lazy+SRQ", {rate_lazy});
  emit(r);

  // The headline claims of the refactor.
  harness::print_check("eager-buffer memory ratio @ 256 ranks (wired / lazy+SRQ)",
                       wired256.eager_mb / lazy256.eager_mb, 10.0, 1e9);
  harness::print_check("QP ratio @ 256 ranks (wired / lazy+SRQ)",
                       wired256.qps / lazy256.qps, 10.0, 1e9);
  harness::print_check("message-rate ratio @ 64 ranks (lazy+SRQ / wired)",
                       rate_lazy / rate_wired, 0.7, 1.5);
  return 0;
}
