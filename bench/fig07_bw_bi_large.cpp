// Figure 7: large-message bi-directional bandwidth (16 KiB – 1 MiB),
// exchange pattern.
// Paper claims: original ~3.1 GB/s total; EPC reaches ~5362 MB/s (abstract;
// the GX+ bus caps the sum well below 2 x the uni-directional peak).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Fig 7 — large-message bi-directional bandwidth (MB/s, both directions)\n");
  const std::vector<Column> cols = {
      original(),
      policy_col(4, mvx::Policy::EvenStriping),
      epc(4),
  };
  const auto sizes = harness::pow2_sizes(16 * 1024, 1 << 20);

  harness::Table t("bi-directional bandwidth, large messages (MB/s)", "bytes");
  std::vector<std::unique_ptr<harness::Runner>> runners;
  for (const Column& c : cols) {
    t.add_column(c.label);
    runners.push_back(std::make_unique<harness::Runner>(mvx::ClusterSpec{2, 1}, c.cfg,
                                                        bench_params()));
  }
  for (auto bytes : sizes) {
    std::vector<double> row;
    for (auto& r : runners) row.push_back(r->bi_bw_mbs(bytes));
    t.add_row(harness::size_label(bytes), row);
  }
  emit(t);

  const std::size_t last = t.row_count() - 1;
  harness::print_check("orig bi-BW peak MB/s @1M (paper ~3079)", t.value(last, 0), 2800, 3500);
  harness::print_check("EPC-4QP bi-BW peak MB/s @1M (paper 5362)", t.value(last, 2), 4900, 5800);
  harness::print_check("EPC gain over orig @1M, % (paper ~63)",
                       (t.value(last, 2) / t.value(last, 0) - 1) * 100, 45, 85);
  return 0;
}
