// Pallas/IMB-style collective suite beyond Alltoall (the paper reports "a
// significant improvement in collective communication using the Pallas
// benchmark suite" and plots Alltoall; this bench covers the rest of the
// suite's core: Bcast, Allreduce, Allgather, Barrier, Reduce_scatter).
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

namespace {

using CollFn = std::function<void(mvx::Communicator&, std::vector<std::byte>&,
                                  std::vector<std::byte>&, std::size_t)>;

double coll_us(mvx::World& w, const CollFn& fn, std::size_t bytes, int iters, int skip) {
  double result = 0;
  w.run([&](mvx::Communicator& c) {
    std::vector<std::byte> a(bytes * static_cast<std::size_t>(c.size()) + 16);
    std::vector<std::byte> b(bytes * static_cast<std::size_t>(c.size()) + 16);
    sim::Time t0 = 0;
    for (int i = 0; i < iters; ++i) {
      if (i == skip) {
        c.barrier();
        t0 = c.now();
      }
      fn(c, a, b, bytes);
    }
    c.barrier();
    if (c.rank() == 0) result = sim::to_us(c.now() - t0) / (iters - skip);
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Pallas-style collectives, 2 nodes x 2 processes, orig vs 4QP EPC\n");
  const std::vector<std::pair<const char*, CollFn>> suite = {
      {"Bcast",
       [](mvx::Communicator& c, std::vector<std::byte>& a, std::vector<std::byte>&, std::size_t n) {
         c.bcast(a.data(), n, mvx::BYTE, 0);
       }},
      {"Allreduce",
       [](mvx::Communicator& c, std::vector<std::byte>& a, std::vector<std::byte>& b, std::size_t n) {
         c.allreduce(a.data(), b.data(), n / 8, mvx::DOUBLE, mvx::Op::Sum);
       }},
      {"Allgather",
       [](mvx::Communicator& c, std::vector<std::byte>& a, std::vector<std::byte>& b, std::size_t n) {
         c.allgather(a.data(), b.data(), n, mvx::BYTE);
       }},
      {"Reduce_scatter",
       [](mvx::Communicator& c, std::vector<std::byte>& a, std::vector<std::byte>& b, std::size_t n) {
         c.reduce_scatter_block(a.data(), b.data(), n / 8, mvx::DOUBLE, mvx::Op::Sum);
       }},
  };

  for (const auto& [name, fn] : suite) {
    harness::Table t(std::string(name) + " time per call (us), 2x2", "bytes");
    t.add_column("orig-1QP");
    t.add_column("EPC-4QP");
    t.add_column("orig/EPC");
    mvx::World orig(mvx::ClusterSpec{2, 2}, mvx::Config::original());
    mvx::World epc(mvx::ClusterSpec{2, 2}, mvx::Config::enhanced(4, mvx::Policy::EPC));
    for (std::int64_t bytes : harness::pow2_sizes(16 * 1024, 1 << 20)) {
      const double o = coll_us(orig, fn, static_cast<std::size_t>(bytes), 10, 2);
      const double e = coll_us(epc, fn, static_cast<std::size_t>(bytes), 10, 2);
      t.add_row(harness::size_label(bytes), {o, e, o / e});
    }
    emit(t);
  }

  // Barrier is latency-only: multi-rail must not hurt it.
  {
    mvx::World orig(mvx::ClusterSpec{2, 2}, mvx::Config::original());
    mvx::World epc(mvx::ClusterSpec{2, 2}, mvx::Config::enhanced(4, mvx::Policy::EPC));
    CollFn barrier_fn = [](mvx::Communicator& c, std::vector<std::byte>&, std::vector<std::byte>&,
                           std::size_t) { c.barrier(); };
    const double o = coll_us(orig, barrier_fn, 1, 40, 8);
    const double e = coll_us(epc, barrier_fn, 1, 40, 8);
    std::printf("\nBarrier: orig %.2f us, EPC-4QP %.2f us\n", o, e);
    harness::print_check("barrier EPC/orig ratio (~1, no penalty)", e / o, 0.9, 1.1);
  }
  return 0;
}
