// Pallas/IMB-style collective suite beyond Alltoall (the paper reports "a
// significant improvement in collective communication using the Pallas
// benchmark suite" and plots Alltoall; this bench covers the rest of the
// suite's core: Bcast, Allreduce, Allgather, Barrier, Reduce_scatter) plus
// the schedule-engine additions: non-blocking variants, the compute-overlap
// efficiency of iallreduce/ibcast, and the multi-lane bcast decomposition.
// `--smoke` shrinks the sweeps for CI; `--json BENCH_coll_overlap.json`
// appends every table as JSON-lines.
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

namespace {

using CollFn = std::function<void(mvx::Communicator&, std::vector<std::byte>&,
                                  std::vector<std::byte>&, std::size_t)>;

double coll_us(mvx::World& w, const CollFn& fn, std::size_t bytes, int iters, int skip) {
  double result = 0;
  w.run([&](mvx::Communicator& c) {
    std::vector<std::byte> a(bytes * static_cast<std::size_t>(c.size()) + 16);
    std::vector<std::byte> b(bytes * static_cast<std::size_t>(c.size()) + 16);
    sim::Time t0 = 0;
    for (int i = 0; i < iters; ++i) {
      if (i == skip) {
        c.barrier();
        t0 = c.now();
      }
      fn(c, a, b, bytes);
    }
    c.barrier();
    if (c.rank() == 0) result = sim::to_us(c.now() - t0) / (iters - skip);
  });
  return result;
}

struct Overlap {
  double coll_us = 0;    ///< standalone time per call
  double total_us = 0;   ///< i-collective + compute(2x coll) + wait
  double hidden_pct = 0; ///< fraction of coll time hidden behind compute
};

/// Measures how much of a non-blocking collective hides behind compute():
/// standalone time first, then start + compute(2x standalone) + wait.
Overlap overlap_us(mvx::World& w, bool bcast, std::size_t bytes, int iters, int skip) {
  Overlap o;
  w.run([&](mvx::Communicator& c) {
    const std::size_t n = bytes / 8;
    std::vector<double> a(n, 1.0 + c.rank()), b(n);
    auto run_coll = [&] {
      if (bcast) {
        c.bcast(a.data(), n, mvx::DOUBLE, 0);
      } else {
        c.allreduce(a.data(), b.data(), n, mvx::DOUBLE, mvx::Op::Sum);
      }
    };
    auto start_coll = [&] {
      return bcast ? c.ibcast(a.data(), n, mvx::DOUBLE, 0)
                   : c.iallreduce(a.data(), b.data(), n, mvx::DOUBLE, mvx::Op::Sum);
    };

    sim::Time t0 = 0;
    for (int i = 0; i < iters; ++i) {
      if (i == skip) {
        c.barrier();
        t0 = c.now();
      }
      run_coll();
    }
    c.barrier();
    const double coll = sim::to_us(c.now() - t0) / (iters - skip);

    // All ranks agree on the compute grain (rank 0's standalone time).
    std::int64_t grain_ns = static_cast<std::int64_t>(2 * coll * 1e3);
    c.bcast(&grain_ns, 1, mvx::INT64, 0);
    const sim::Time t_compute = sim::nanoseconds(static_cast<double>(grain_ns));

    for (int i = 0; i < iters; ++i) {
      if (i == skip) {
        c.barrier();
        t0 = c.now();
      }
      mvx::Request r = start_coll();
      c.compute(t_compute);
      c.wait(r);
    }
    c.barrier();
    if (c.rank() == 0) {
      o.coll_us = coll;
      o.total_us = sim::to_us(c.now() - t0) / (iters - skip);
      const double t_comp_us = sim::to_us(t_compute);
      o.hidden_pct = coll > 0 ? 100.0 * (coll + t_comp_us - o.total_us) / coll : 0;
    }
  });
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int iters = smoke ? 5 : 10;
  const int skip = smoke ? 1 : 2;
  const std::vector<std::int64_t> sweep =
      smoke ? std::vector<std::int64_t>{64 * 1024, 1 << 20}
            : harness::pow2_sizes(16 * 1024, 1 << 20);
  std::printf("Pallas-style collectives, 2 nodes x 2 processes, orig vs 4QP EPC%s\n",
              smoke ? " (smoke)" : "");
  const std::vector<std::pair<const char*, CollFn>> suite = {
      {"Bcast",
       [](mvx::Communicator& c, std::vector<std::byte>& a, std::vector<std::byte>&, std::size_t n) {
         c.bcast(a.data(), n, mvx::BYTE, 0);
       }},
      {"Allreduce",
       [](mvx::Communicator& c, std::vector<std::byte>& a, std::vector<std::byte>& b, std::size_t n) {
         c.allreduce(a.data(), b.data(), n / 8, mvx::DOUBLE, mvx::Op::Sum);
       }},
      {"Allgather",
       [](mvx::Communicator& c, std::vector<std::byte>& a, std::vector<std::byte>& b, std::size_t n) {
         c.allgather(a.data(), b.data(), n, mvx::BYTE);
       }},
      {"Reduce_scatter",
       [](mvx::Communicator& c, std::vector<std::byte>& a, std::vector<std::byte>& b, std::size_t n) {
         c.reduce_scatter_block(a.data(), b.data(), n / 8, mvx::DOUBLE, mvx::Op::Sum);
       }},
  };

  for (const auto& [name, fn] : suite) {
    harness::Table t(std::string(name) + " time per call (us), 2x2", "bytes");
    t.add_column("orig-1QP");
    t.add_column("EPC-4QP");
    t.add_column("orig/EPC");
    mvx::World orig(mvx::ClusterSpec{2, 2}, mvx::Config::original());
    mvx::World epc(mvx::ClusterSpec{2, 2}, mvx::Config::enhanced(4, mvx::Policy::EPC));
    for (std::int64_t bytes : sweep) {
      const double o = coll_us(orig, fn, static_cast<std::size_t>(bytes), iters, skip);
      const double e = coll_us(epc, fn, static_cast<std::size_t>(bytes), iters, skip);
      t.add_row(harness::size_label(bytes), {o, e, o / e});
    }
    emit(t);
  }

  // Non-blocking variants, started and immediately waited: the schedule
  // engine must not tax the blocking path.
  {
    harness::Table t("Non-blocking vs blocking (EPC-4QP, us/call), 2x2", "bytes");
    t.add_column("bcast");
    t.add_column("ibcast+wait");
    t.add_column("allreduce");
    t.add_column("iallreduce+wait");
    mvx::World epc(mvx::ClusterSpec{2, 2}, mvx::Config::enhanced(4, mvx::Policy::EPC));
    const CollFn bcast_b = [](mvx::Communicator& c, std::vector<std::byte>& a,
                              std::vector<std::byte>&, std::size_t n) {
      c.bcast(a.data(), n, mvx::BYTE, 0);
    };
    const CollFn bcast_i = [](mvx::Communicator& c, std::vector<std::byte>& a,
                              std::vector<std::byte>&, std::size_t n) {
      mvx::Request r = c.ibcast(a.data(), n, mvx::BYTE, 0);
      c.wait(r);
    };
    const CollFn ar_b = [](mvx::Communicator& c, std::vector<std::byte>& a,
                           std::vector<std::byte>& b, std::size_t n) {
      c.allreduce(a.data(), b.data(), n / 8, mvx::DOUBLE, mvx::Op::Sum);
    };
    const CollFn ar_i = [](mvx::Communicator& c, std::vector<std::byte>& a,
                           std::vector<std::byte>& b, std::size_t n) {
      mvx::Request r = c.iallreduce(a.data(), b.data(), n / 8, mvx::DOUBLE, mvx::Op::Sum);
      c.wait(r);
    };
    for (std::int64_t bytes : sweep) {
      t.add_row(harness::size_label(bytes),
                {coll_us(epc, bcast_b, static_cast<std::size_t>(bytes), iters, skip),
                 coll_us(epc, bcast_i, static_cast<std::size_t>(bytes), iters, skip),
                 coll_us(epc, ar_b, static_cast<std::size_t>(bytes), iters, skip),
                 coll_us(epc, ar_i, static_cast<std::size_t>(bytes), iters, skip)});
    }
    emit(t);
  }

  // Compute-overlap efficiency: how much of an in-flight collective hides
  // behind compute() of twice its standalone time (100% = fully hidden).
  double iallreduce_hidden_1m = 0;
  {
    harness::Table t("Compute-overlap efficiency (EPC-4QP), 2x2", "bytes");
    t.add_column("iallreduce_us");
    t.add_column("overlapped_total_us");
    t.add_column("iallreduce_hidden_%");
    t.add_column("ibcast_hidden_%");
    mvx::World epc(mvx::ClusterSpec{2, 2}, mvx::Config::enhanced(4, mvx::Policy::EPC));
    for (std::int64_t bytes : sweep) {
      const Overlap ar = overlap_us(epc, /*bcast=*/false, static_cast<std::size_t>(bytes), iters,
                                    skip);
      const Overlap bc = overlap_us(epc, /*bcast=*/true, static_cast<std::size_t>(bytes), iters,
                                    skip);
      t.add_row(harness::size_label(bytes), {ar.coll_us, ar.total_us, ar.hidden_pct,
                                             bc.hidden_pct});
      if (bytes == 1 << 20) iallreduce_hidden_1m = ar.hidden_pct;
    }
    emit(t);
  }

  // Multi-lane bcast (Traeff-style lane decomposition, one lane per rail)
  // against the single-lane binomial whose rendezvous writes stripe instead.
  {
    harness::Table t("Bcast multi-lane vs single-lane (EPC-4QP, us/call), 2x2", "bytes");
    t.add_column("single-lane");
    t.add_column("multi-lane");
    t.add_column("single/multi");
    mvx::Config single_cfg = mvx::Config::enhanced(4, mvx::Policy::EPC);
    mvx::Config multi_cfg = single_cfg;
    multi_cfg.coll.lanes = 0;  // one lane per rail
    mvx::World single(mvx::ClusterSpec{2, 2}, single_cfg);
    mvx::World multi(mvx::ClusterSpec{2, 2}, multi_cfg);
    const CollFn bcast_fn = [](mvx::Communicator& c, std::vector<std::byte>& a,
                               std::vector<std::byte>&, std::size_t n) {
      c.bcast(a.data(), n, mvx::BYTE, 0);
    };
    const std::vector<std::int64_t> lane_sweep =
        smoke ? std::vector<std::int64_t>{1 << 20}
              : harness::pow2_sizes(256 * 1024, 4 << 20);
    for (std::int64_t bytes : lane_sweep) {
      const double s = coll_us(single, bcast_fn, static_cast<std::size_t>(bytes), iters, skip);
      const double m = coll_us(multi, bcast_fn, static_cast<std::size_t>(bytes), iters, skip);
      t.add_row(harness::size_label(bytes), {s, m, s / m});
    }
    emit(t);

    harness::print_check("multi-lane bcast speedup @1M (>1)",
                         t.value(t.row_count() - (smoke ? 1 : 3), 2), 1.0, 3.0);
  }
  harness::print_check("iallreduce overlap hidden @1M (>=50%)", iallreduce_hidden_1m, 50.0,
                       100.0);

  // Barrier is latency-only: multi-rail must not hurt it.
  {
    mvx::World orig(mvx::ClusterSpec{2, 2}, mvx::Config::original());
    mvx::World epc(mvx::ClusterSpec{2, 2}, mvx::Config::enhanced(4, mvx::Policy::EPC));
    CollFn barrier_fn = [](mvx::Communicator& c, std::vector<std::byte>&, std::vector<std::byte>&,
                           std::size_t) { c.barrier(); };
    const double o = coll_us(orig, barrier_fn, 1, 40, 8);
    const double e = coll_us(epc, barrier_fn, 1, 40, 8);
    std::printf("\nBarrier: orig %.2f us, EPC-4QP %.2f us\n", o, e);
    harness::print_check("barrier EPC/orig ratio (~1, no penalty)", e / o, 0.9, 1.1);
  }
  return 0;
}
