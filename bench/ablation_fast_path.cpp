// Ablation: the adaptive RDMA fast path (MVAPICH's polled eager-RDMA
// channel).  Small messages bypass the responder's receive-descriptor and
// CQE processing; the ring cutoff bounds its memory footprint.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Ablation — RDMA eager fast path (EPC, 4 QPs/port)\n");
  mvx::Config off = mvx::Config::enhanced(4, mvx::Policy::EPC);
  mvx::Config on = off;
  on.use_rdma_fast_path = true;

  harness::Table t("send/recv channel vs RDMA fast path", "bytes");
  t.add_column("lat chan us");
  t.add_column("lat fp us");
  t.add_column("bw chan MB/s");
  t.add_column("bw fp MB/s");
  harness::Runner rc(mvx::ClusterSpec{2, 1}, off, bench_params());
  harness::Runner rf(mvx::ClusterSpec{2, 1}, on, bench_params());
  for (std::int64_t bytes : {1L, 64L, 256L, 1024L}) {
    t.add_row(harness::size_label(bytes),
              {rc.latency_us(bytes), rf.latency_us(bytes), rc.uni_bw_mbs(bytes),
               rf.uni_bw_mbs(bytes)});
  }
  emit(t);

  harness::print_check("fast path latency gain @1B, us", t.value(0, 0) - t.value(0, 1), 0.05, 2.0);
  harness::print_check("fast path never hurts bw @1K (ratio >= 0.97)",
                       t.value(3, 3) / t.value(3, 2), 0.97, 3.0);
  return 0;
}
