// Figure 5: impact of scheduling policies on small-message uni-directional
// bandwidth (window test, 1 B – 8 KiB).
// Paper claims: below ~1 KiB, startup time limits any gain from extra QPs;
// from 1–8 KiB the 4-QP configurations (EPC == round robin for non-blocking
// traffic) pull ahead of the original.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Fig 5 — small-message uni-directional bandwidth (MB/s), window 64\n");
  const std::vector<Column> cols = {
      original(),
      epc(2),
      epc(4),
      policy_col(4, mvx::Policy::RoundRobin),
  };
  const auto sizes = harness::pow2_sizes(1, 8 * 1024);

  harness::Table t("uni-directional bandwidth, small messages (MB/s)", "bytes");
  std::vector<std::unique_ptr<harness::Runner>> runners;
  for (const Column& c : cols) {
    t.add_column(c.label);
    runners.push_back(std::make_unique<harness::Runner>(mvx::ClusterSpec{2, 1}, c.cfg,
                                                        bench_params()));
  }
  for (auto bytes : sizes) {
    std::vector<double> row;
    for (auto& r : runners) row.push_back(r->uni_bw_mbs(bytes));
    t.add_row(harness::size_label(bytes), row);
  }
  emit(t);

  const std::size_t r8k = t.row_count() - 1;
  harness::print_check("EPC-4QP / orig BW ratio @8K (>1.25)", t.value(r8k, 2) / t.value(r8k, 0),
                       1.25, 4.0);
  harness::print_check("EPC-4QP / orig BW ratio @128B (~1, startup-bound)",
                       t.value(7, 2) / t.value(7, 0), 0.85, 1.35);
  harness::print_check("EPC-4QP == RR-4QP @4K (ratio ~1)", t.value(r8k - 1, 2) / t.value(r8k - 1, 3),
                       0.95, 1.05);
  return 0;
}
