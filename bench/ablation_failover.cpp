// Ablation: multi-rail failover — windowed uni-directional bandwidth while a
// rail drops and later recovers.  With 2 HCAs × 2 QPs (4 rails) and even
// striping, losing one HCA's port should step bandwidth down roughly in
// proportion to the surviving rails (one of two GX+ buses remains), and the
// timed recovery probe should restore the full rate once the link re-arms.
// The fault schedule is deterministic, so this bench is bit-stable run to run.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

namespace {

constexpr std::size_t kMsgBytes = 256 * 1024;
constexpr int kWindow = 8;
constexpr double kDownUs = 2000.0;
constexpr double kUpUs = 4000.0;

struct PhaseStats {
  double mbs = 0;
  double msgs = 0;
};

/// Bytes completed inside [lo_us, hi_us) over that phase's duration.
PhaseStats phase_bw(const std::vector<double>& done_us, double lo_us, double hi_us) {
  PhaseStats st;
  for (double t : done_us) {
    if (t >= lo_us && t < hi_us) st.msgs += 1;
  }
  st.mbs = st.msgs * static_cast<double>(kMsgBytes) / ((hi_us - lo_us) * 1e-6) / 1e6;
  return st;
}

}  // namespace

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Ablation — rail failover: uni-BW while one HCA's link flaps\n");
  std::printf("  4 rails (2 HCAs x 2 QPs, even striping); link down %.0f us, up %.0f us\n",
              kDownUs, kUpUs);

  mvx::Config cfg = mvx::Config::enhanced(2, mvx::Policy::EvenStriping);
  cfg.hcas_per_node = 2;
  cfg.fault.enabled = true;
  {
    mvx::Config::FaultConfig::LinkFlap f;
    f.node = 0;
    f.hca = 1;
    f.port = 0;
    f.down_at = sim::microseconds(kDownUs);
    f.up_at = sim::microseconds(kUpUs);
    cfg.fault.link_flaps.push_back(f);
  }

  // Stream enough fixed-size messages that the run comfortably spans the
  // flap and a recovery tail; record each message's completion time.
  constexpr int kMsgs = 160;
  std::vector<double> done_us;
  double end_us = 0;
  mvx::World w(mvx::ClusterSpec{2, 1}, cfg);
  w.run([&](mvx::Communicator& c) {
    std::vector<std::byte> buf(kMsgBytes, std::byte{0x6b});
    if (c.rank() == 0) {
      std::vector<mvx::Request> win;
      for (int i = 0; i < kMsgs; ++i) {
        win.push_back(c.isend(buf.data(), buf.size(), mvx::BYTE, 1, i));
        if (static_cast<int>(win.size()) == kWindow) {
          c.waitall(win);
          win.clear();
        }
      }
      c.waitall(win);
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        c.recv(buf.data(), buf.size(), mvx::BYTE, 0, i);
        done_us.push_back(sim::to_s(c.now()) * 1e6);
      }
      end_us = sim::to_s(c.now()) * 1e6;
    }
    c.barrier();
  });

  const PhaseStats before = phase_bw(done_us, 500.0, kDownUs);  // skip warmup
  const PhaseStats during = phase_bw(done_us, kDownUs + 100.0, kUpUs);
  const PhaseStats after = phase_bw(done_us, kUpUs + 200.0, end_us);

  harness::Table t("failover bandwidth phases", "phase");
  t.add_column("MB/s");
  t.add_column("msgs");
  t.add_column("rel to healthy");
  t.add_row("healthy (pre-fault)", {before.mbs, before.msgs, 1.0});
  t.add_row("degraded (1 HCA down)", {during.mbs, during.msgs, during.mbs / before.mbs});
  t.add_row("recovered (post-up)", {after.mbs, after.msgs, after.mbs / before.mbs});
  emit(t);

  std::printf("  telemetry: rail.down=%llu rail.recovered=%llu fault.send_errors=%llu "
              "fault.rndv_restriped=%llu\n",
              static_cast<unsigned long long>(w.telemetry().counter_value("rail.down")),
              static_cast<unsigned long long>(w.telemetry().counter_value("rail.recovered")),
              static_cast<unsigned long long>(w.telemetry().counter_value("fault.send_errors")),
              static_cast<unsigned long long>(w.telemetry().counter_value("fault.rndv_restriped")));

  // Losing one of two HCAs halves the bus bandwidth; the surviving rails
  // should land well below healthy but far from zero, and recovery should
  // return to the full rate.
  harness::print_check("degraded / healthy BW (one of two buses left)",
                       during.mbs / before.mbs, 0.30, 0.85);
  harness::print_check("recovered / healthy BW", after.mbs / before.mbs, 0.90, 1.10);
  return 0;
}
