// Ablation: the minimum-stripe floor.  Cutting a message into stripes below
// a few KiB pays per-stripe posting/ACK costs without adding engine
// parallelism; this sweep quantifies that trade-off for blocking traffic.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace ib12x;
using namespace ib12x::bench;

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  std::printf("Ablation — minimum stripe size (even striping, 8 QPs/port)\n");
  harness::Table t("min-stripe sweep (striping-8QP, blocking latency us)", "min-stripe");
  t.add_column("lat@32K us");
  t.add_column("lat@128K us");
  t.add_column("lat@1M us");
  for (std::int64_t floor : {512L, 2048L, 8192L, 32768L}) {
    mvx::Config cfg = mvx::Config::enhanced(8, mvx::Policy::EvenStriping);
    cfg.min_stripe = floor;
    harness::Runner r(mvx::ClusterSpec{2, 1}, cfg, bench_params());
    t.add_row(harness::size_label(floor),
              {r.latency_us(32 * 1024), r.latency_us(128 * 1024), r.latency_us(1 << 20)});
  }
  emit(t);
  return 0;
}
