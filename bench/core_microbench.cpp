// google-benchmark microbenchmarks of the simulation substrate itself:
// event-queue throughput, resource-reservation cost, end-to-end modelled
// message rate, FFT kernel speed.  These guard the *wall-clock* performance
// of the simulator (a regression here makes the figure benches slow, not
// wrong).
#include <benchmark/benchmark.h>

#include <vector>

#include "ib/verbs.hpp"
#include "mvx/mpi.hpp"
#include "nas/fft.hpp"
#include "sim/event_queue.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ib12x;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) q.push((i * 7919) % 1000, [] {});
    sim::Time t = 0;
    while (!q.empty()) benchmark::DoNotOptimize(q.pop(t));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulatorEventCascade(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    int remaining = static_cast<int>(state.range(0));
    std::function<void()> chain = [&] {
      if (--remaining > 0) s.after(100, chain);
    };
    s.after(100, chain);
    s.run();
    benchmark::DoNotOptimize(s.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventCascade)->Arg(10000);

void BM_ServerReserve(benchmark::State& state) {
  sim::BandwidthServer srv("bench", 3.0);
  sim::Time now = 0;
  for (auto _ : state) {
    auto r = srv.reserve_bytes(now, now, 4096);
    now = r.start;  // keep `now` monotone without unbounded growth rate
    benchmark::DoNotOptimize(r.finish);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerReserve);

void BM_IbMessageRate(benchmark::State& state) {
  // Modelled (not wall-clock) messages through the full HCA pipeline.
  const std::int64_t msg = state.range(0);
  for (auto _ : state) {
    sim::Simulator s;
    ib::Fabric fab(s);
    ib::Hca& a = fab.add_hca(0);
    ib::Hca& b = fab.add_hca(1);
    ib::CompletionQueue ascq, arcq, bscq, brcq;
    ib::QueuePair& qa = a.create_qp(0, ascq, arcq);
    ib::QueuePair& qb = b.create_qp(0, bscq, brcq);
    ib::Fabric::connect(qa, qb);
    std::vector<std::byte> src(static_cast<std::size_t>(msg)), dst(static_cast<std::size_t>(msg));
    auto smr = a.mem().register_memory(src.data(), src.size());
    auto dmr = b.mem().register_memory(dst.data(), dst.size());
    for (int i = 0; i < 64; ++i) {
      qb.post_recv({.wr_id = 1, .dst = dst.data(), .length = static_cast<std::uint32_t>(msg),
                    .lkey = dmr.lkey});
      qa.post_send({.wr_id = 2, .opcode = ib::Opcode::Send, .src = src.data(),
                    .length = static_cast<std::uint32_t>(msg), .lkey = smr.lkey});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_IbMessageRate)->Arg(256)->Arg(65536);

void BM_MpiPingPongWallClock(benchmark::State& state) {
  for (auto _ : state) {
    mvx::World w(mvx::ClusterSpec{2, 1}, mvx::Config::enhanced(4, mvx::Policy::EPC));
    w.run([](mvx::Communicator& c) {
      std::byte b{};
      for (int i = 0; i < 50; ++i) {
        if (c.rank() == 0) {
          c.send(&b, 1, mvx::BYTE, 1, 0);
          c.recv(&b, 1, mvx::BYTE, 1, 0);
        } else {
          c.recv(&b, 1, mvx::BYTE, 0, 0);
          c.send(&b, 1, mvx::BYTE, 0, 0);
        }
      }
    });
    benchmark::DoNotOptimize(w.end_time());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MpiPingPongWallClock);

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  nas::Fft fft(n);
  std::vector<nas::Complex> data(n, nas::Complex(1.0, -0.5));
  for (auto _ : state) {
    fft.transform(data.data(), -1);
    benchmark::DoNotOptimize(data[0]);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(128)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
