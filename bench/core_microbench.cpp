// google-benchmark microbenchmarks of the simulation substrate itself:
// event-queue throughput, same-instant lane throughput, event cascades,
// process suspend/resume cost (fiber vs. the thread-baton it replaced),
// resource-reservation cost, end-to-end modelled message rate, FFT kernel
// speed.  These guard the *wall-clock* performance of the simulator (a
// regression here makes the figure benches slow, not wrong).
//
// Results are also written to BENCH_kernel.json (google-benchmark's JSON
// format) unless the caller passes its own --benchmark_out flag.
#include <benchmark/benchmark.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ib/verbs.hpp"
#include "mvx/mpi.hpp"
#include "nas/fft.hpp"
#include "sim/event_queue.hpp"
#include "sim/process.hpp"
#include "sim/server.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ib12x;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) q.push((i * 7919) % 1000, [] {});
    sim::Time t = 0;
    while (!q.empty()) benchmark::DoNotOptimize(q.pop(t));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_EventQueueSameInstant(benchmark::State& state) {
  // The dominant pattern in the figure benches: events scheduled for the
  // current instant (CQE demux, credit returns, wakeups) — the FIFO lane.
  const int n = static_cast<int>(state.range(0));
  sim::EventQueue q;
  sim::Time t = 0;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) q.push(0, [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop(t));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueSameInstant)->Arg(1024);

/// Self-rescheduling event with a trivially-copyable 16-byte capture: the
/// whole chain runs without a single kernel allocation once the queue warms.
struct Chain {
  sim::Simulator* s;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) s->after(100, Chain{s, remaining});
  }
};

void BM_SimulatorEventCascade(benchmark::State& state) {
  std::uint64_t allocs = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator s;
    int remaining = static_cast<int>(state.range(0));
    s.after(100, Chain{&s, &remaining});
    s.run();
    benchmark::DoNotOptimize(s.now());
    allocs += s.kernel_allocs();
    events += s.events_processed();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["allocs_per_event"] =
      events == 0 ? 0.0 : static_cast<double>(allocs) / static_cast<double>(events);
}
BENCHMARK(BM_SimulatorEventCascade)->Arg(10000);

void BM_ProcessPingPong(benchmark::State& state) {
  // Two simulated processes handing a baton back and forth: the pure
  // suspend/resume + wakeup cost of the fiber-based process engine.
  const int rounds = static_cast<int>(state.range(0));
  std::uint64_t switches = 0;
  for (auto _ : state) {
    sim::Simulator s;
    sim::ProcessSet procs(s);
    sim::Waitable wa, wb;
    int turn = 0;
    procs.add("ping", [&](sim::Process& p) {
      for (int i = 0; i < rounds; ++i) {
        p.wait_until(wa, [&] { return turn == 0; });
        turn = 1;
        wb.notify_all();
      }
    });
    procs.add("pong", [&](sim::Process& p) {
      for (int i = 0; i < rounds; ++i) {
        p.wait_until(wb, [&] { return turn == 1; });
        turn = 0;
        wa.notify_all();
      }
    });
    procs.run_all();
    switches += s.fiber_switches();
  }
  state.SetItemsProcessed(state.iterations() * rounds);
  state.counters["switches_per_round"] =
      static_cast<double>(switches) /
      static_cast<double>(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProcessPingPong)->Arg(1000);

void BM_ThreadBatonPingPong(benchmark::State& state) {
  // The mechanism the fiber engine replaced: one kernel thread per process,
  // control handed over with a mutex/condvar baton (two kernel context
  // switches per handoff).  Kept as the in-bench baseline BM_ProcessPingPong
  // is measured against.
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::mutex m;
    std::condition_variable cv;
    int turn = 0;
    std::thread peer([&] {
      std::unique_lock<std::mutex> lk(m);
      for (int i = 0; i < rounds; ++i) {
        cv.wait(lk, [&] { return turn == 1; });
        turn = 0;
        cv.notify_one();
      }
    });
    {
      std::unique_lock<std::mutex> lk(m);
      for (int i = 0; i < rounds; ++i) {
        cv.wait(lk, [&] { return turn == 0; });
        turn = 1;
        cv.notify_one();
      }
    }
    peer.join();
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_ThreadBatonPingPong)->Arg(1000);

void BM_ServerReserve(benchmark::State& state) {
  sim::BandwidthServer srv("bench", 3.0);
  sim::Time now = 0;
  for (auto _ : state) {
    auto r = srv.reserve_bytes(now, now, 4096);
    now = r.start;  // keep `now` monotone without unbounded growth rate
    benchmark::DoNotOptimize(r.finish);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerReserve);

void BM_IbMessageRate(benchmark::State& state) {
  // Modelled (not wall-clock) messages through the full HCA pipeline.
  const std::int64_t msg = state.range(0);
  for (auto _ : state) {
    sim::Simulator s;
    ib::Fabric fab(s);
    ib::Hca& a = fab.add_hca(0);
    ib::Hca& b = fab.add_hca(1);
    ib::CompletionQueue ascq, arcq, bscq, brcq;
    ib::QueuePair& qa = a.create_qp(0, ascq, arcq);
    ib::QueuePair& qb = b.create_qp(0, bscq, brcq);
    ib::Fabric::connect(qa, qb);
    std::vector<std::byte> src(static_cast<std::size_t>(msg)), dst(static_cast<std::size_t>(msg));
    auto smr = a.mem().register_memory(src.data(), src.size());
    auto dmr = b.mem().register_memory(dst.data(), dst.size());
    for (int i = 0; i < 64; ++i) {
      qb.post_recv({.wr_id = 1, .dst = dst.data(), .length = static_cast<std::uint32_t>(msg),
                    .lkey = dmr.lkey});
      qa.post_send({.wr_id = 2, .opcode = ib::Opcode::Send, .src = src.data(),
                    .length = static_cast<std::uint32_t>(msg), .lkey = smr.lkey});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_IbMessageRate)->Arg(256)->Arg(65536);

void BM_MpiPingPongWallClock(benchmark::State& state) {
  for (auto _ : state) {
    mvx::World w(mvx::ClusterSpec{2, 1}, mvx::Config::enhanced(4, mvx::Policy::EPC));
    w.run([](mvx::Communicator& c) {
      std::byte b{};
      for (int i = 0; i < 50; ++i) {
        if (c.rank() == 0) {
          c.send(&b, 1, mvx::BYTE, 1, 0);
          c.recv(&b, 1, mvx::BYTE, 1, 0);
        } else {
          c.recv(&b, 1, mvx::BYTE, 0, 0);
          c.send(&b, 1, mvx::BYTE, 0, 0);
        }
      }
    });
    benchmark::DoNotOptimize(w.end_time());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MpiPingPongWallClock);

// ---- parallel-engine scaling (the sim_shards knob) ------------------------
//
// Both benchmarks report events/sec via SetItemsProcessed, so the JSON's
// items_per_second column *is* the scaling curve, plus a host_cpus counter so
// readers can tell a 1-core container (where >1 shard cannot speed anything
// up) from a real multi-core run.

/// One relay chain: hops across the shard mesh every `gap` of virtual time.
struct MeshRelay {
  std::vector<sim::Simulator*>* sims;
  sim::Time gap;
  int remaining;
  int at;
  void operator()() {
    if (--remaining <= 0) return;
    sim::Simulator& cur = *(*sims)[static_cast<std::size_t>(at)];
    const int next = (at + 1) % static_cast<int>(sims->size());
    MeshRelay hop = *this;
    hop.at = next;
    cur.post(*(*sims)[static_cast<std::size_t>(next)], cur.now() + gap, hop);
  }
};

void BM_ShardedRelayEventsPerSec(benchmark::State& state) {
  // Pure sim-layer scaling: a multi-node ping-pong mesh of relay chains
  // hopping shard to shard with one lookahead window per hop — all cross-
  // shard traffic, the engine's worst case for barrier overhead.
  const int shards = static_cast<int>(state.range(0));
  constexpr int kChains = 16;
  constexpr int kHops = 4000;
  const sim::Time gap = sim::nanoseconds(700);
  std::uint64_t events = 0;
  for (auto _ : state) {
    std::vector<sim::Simulator> sims(static_cast<std::size_t>(shards));
    std::vector<sim::Simulator*> ptrs;
    for (auto& s : sims) ptrs.push_back(&s);
    for (int c = 0; c < kChains; ++c) {
      const int at = c % shards;
      sims[static_cast<std::size_t>(at)].at(c, MeshRelay{&ptrs, gap, kHops, at});
    }
    if (shards == 1) {
      sims[0].run();
    } else {
      sim::ShardEngine engine(ptrs, gap);
      engine.run();
    }
    for (const auto& s : sims) events += s.events_processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["shards"] = shards;
  state.counters["host_cpus"] = static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ShardedRelayEventsPerSec)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_ShardedAlltoallEventsPerSec(benchmark::State& state) {
  // End-to-end scaling on a fig08-alltoall-sized workload: 8 nodes, every
  // rank exchanging 16 KiB with every other rank through the full MPI +
  // HCA model, partitioned over sim_shards shards.
  const int shards = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    mvx::Config cfg = mvx::Config::enhanced(4, mvx::Policy::EPC);
    cfg.lazy_connect = false;
    cfg.sim_shards = shards;
    mvx::World w(mvx::ClusterSpec{/*nodes=*/8, /*procs_per_node=*/1}, cfg);
    w.run([](mvx::Communicator& c) {
      constexpr std::size_t kPerDest = 16 * 1024;
      std::vector<std::byte> in(kPerDest * static_cast<std::size_t>(c.size()));
      std::vector<std::byte> out(in.size());
      for (int it = 0; it < 3; ++it) {
        c.alltoall(in.data(), out.data(), kPerDest, mvx::BYTE);
      }
      c.barrier();
    });
    events += w.events_processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["shards"] = shards;
  state.counters["host_cpus"] = static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ShardedAlltoallEventsPerSec)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  nas::Fft fft(n);
  std::vector<nas::Complex> data(n, nas::Complex(1.0, -0.5));
  for (auto _ : state) {
    fft.transform(data.data(), -1);
    benchmark::DoNotOptimize(data[0]);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(128)->Arg(4096);

}  // namespace

// BENCHMARK_MAIN plus a default --benchmark_out: the kernel numbers always
// land in BENCH_kernel.json (cwd) unless the caller redirects them.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_kernel.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
