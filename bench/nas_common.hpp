// Shared driver for the NAS figure benches (fig. 9–12): runs a kernel on
// 2 (2x1), 4 (2x2) and 8 (2x4) processes with the original configuration and
// with 4 QPs/port + EPC, and prints execution-time pairs plus the percentage
// improvement — the quantity the paper's bar charts show.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/table.hpp"
#include "mvx/mpi.hpp"
#include "nas/params.hpp"

namespace ib12x::bench {

using KernelFn = std::function<double(mvx::Communicator&, nas::NasClass)>;

/// Runs `kernel` (returning rank-0 execution seconds) for both configs over
/// the paper's process counts and prints the comparison table.
inline void run_nas_figure(const char* name, nas::NasClass cls, const KernelFn& kernel,
                           double paper_gain_lo, double paper_gain_hi) {
  std::printf("%s — NAS class %s, 1 HCA / 1 port, orig vs 4QP EPC\n", name, nas::to_string(cls));
  harness::Table t(std::string(name) + " execution time (s)", "procs");
  t.add_column("orig-1QP");
  t.add_column("EPC-4QP");
  t.add_column("gain %");

  const mvx::ClusterSpec layouts[] = {{2, 1}, {2, 2}, {2, 4}};
  double gain2 = 0;
  for (const auto& spec : layouts) {
    double secs[2] = {0, 0};
    const mvx::Config cfgs[2] = {apply_wiring_env(mvx::Config::original()),
                                 apply_wiring_env(mvx::Config::enhanced(4, mvx::Policy::EPC))};
    for (int i = 0; i < 2; ++i) {
      mvx::World w(spec, cfgs[i]);
      double s = 0;
      w.run([&](mvx::Communicator& c) {
        double r = kernel(c, cls);
        if (c.rank() == 0) s = r;
      });
      secs[i] = s;
    }
    const double gain = (1.0 - secs[1] / secs[0]) * 100.0;
    if (spec.total_ranks() == 2) gain2 = gain;
    t.add_row(std::to_string(spec.total_ranks()), {secs[0], secs[1], gain});
  }
  emit(t);
  harness::print_check("EPC gain at 2 processes, % (paper band)", gain2, paper_gain_lo,
                       paper_gain_hi);
}

}  // namespace ib12x::bench
