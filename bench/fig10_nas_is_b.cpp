// Figure 10: NAS Integer Sort, class B, 2/4/8 processes.
// Paper: ~9% execution-time improvement at 2 processes with 4 QPs/port EPC.
#include "nas_common.hpp"
#include "nas/is.hpp"

int main(int argc, char** argv) {
  ib12x::bench::init(argc, argv);
  using namespace ib12x;
  bench::run_nas_figure("Fig 10 — IS class B", nas::NasClass::B,
                        [](mvx::Communicator& c, nas::NasClass cls) {
                          nas::IsResult r = nas::run_is(c, cls);
                          if (!r.verified) throw std::runtime_error("IS verification failed");
                          return r.seconds;
                        },
                        /*paper_gain band ~9%:*/ 5, 15);
  return 0;
}
